// Tests for the runtime-dispatched SIMD microkernel layer (backend/simd.h,
// backend/dispatch.h, backend/microkernels.inc):
//
//   - dispatch-level parity: scalar vs every available ISA level for
//     gemm/cgemm/cgemm_batched/rcgemm on deliberately awkward shapes (tile
//     tails in M and N, K=1, M=1, N=1) within documented float tolerances
//   - per-level bit-exactness: thread-count determinism at every level, and
//     batched calls vs per-item calls at the same level
//   - the vectorized transcendental helpers (sincos, exp via softmax)
//     against libm
//   - SimdScope clamping and the scratch arena under growth/reuse
//
// The scalar level IS the legacy blocked kernel path (same code), so
// "scalar vs level" parity doubles as "pre-SIMD vs SIMD" parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "backend/arena.h"
#include "backend/dispatch.h"
#include "backend/kernels.h"
#include "backend/parallel.h"
// This TU compiles at the base ISA, so simd.h resolves to the portable
// scalar vec8f — the tests below keep that branch compiled and honest.
#include "backend/simd.h"
#include "common/rng.h"

namespace {

namespace be = adept::backend;
using adept::Rng;
using be::CTrans;
using be::SimdLevel;
using be::SimdScope;
using be::Trans;

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// Levels above scalar this binary+CPU can actually run.
std::vector<SimdLevel> simd_levels() {
  auto all = be::available_simd_levels();
  std::vector<SimdLevel> out;
  for (SimdLevel l : all) {
    if (l != SimdLevel::scalar) out.push_back(l);
  }
  return out;
}

struct Shape {
  std::int64_t m, n, k;
};

// Tails in every dimension: not multiples of the 6/4-row or 16-column tiles,
// K=1, M=1, N=1, sub-vector N, and a K that spans two 8-lane groups plus one.
const Shape kAwkwardShapes[] = {
    {1, 1, 1},  {1, 17, 5},  {3, 5, 7},    {5, 1, 9},    {6, 16, 8},
    {7, 17, 33}, {13, 31, 1}, {1, 8, 4},   {4, 9, 2},    {37, 41, 64},
    {48, 64, 130},
};

// ---- gemm dispatch parity --------------------------------------------------

TEST(SimdDispatch, GemmParityAcrossLevels) {
  const auto levels = simd_levels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD level available";
  for (const Shape& sh : kAwkwardShapes) {
    for (Trans ta : {Trans::N, Trans::T}) {
      for (Trans tb : {Trans::N, Trans::T}) {
        Rng rng(91);
        const std::int64_t lda = ta == Trans::N ? sh.k : sh.m;
        const std::int64_t ldb = tb == Trans::N ? sh.n : sh.k;
        const auto a = random_vec(
            static_cast<std::size_t>((ta == Trans::N ? sh.m : sh.k) * lda), rng);
        const auto b = random_vec(
            static_cast<std::size_t>((tb == Trans::N ? sh.k : sh.n) * ldb), rng);
        std::vector<float> ref(static_cast<std::size_t>(sh.m * sh.n));
        {
          SimdScope scope(SimdLevel::scalar);
          be::gemm(ta, tb, sh.m, sh.n, sh.k, 1.0f, a.data(), lda, b.data(),
                   ldb, 0.0f, ref.data(), sh.n);
        }
        for (SimdLevel level : levels) {
          SimdScope scope(level);
          std::vector<float> got(static_cast<std::size_t>(sh.m * sh.n), 7.0f);
          be::gemm(ta, tb, sh.m, sh.n, sh.k, 1.0f, a.data(), lda, b.data(),
                   ldb, 0.0f, got.data(), sh.n);
          for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_NEAR(got[i], ref[i], 1e-4f)
                << be::simd_level_name(level) << " m=" << sh.m << " n=" << sh.n
                << " k=" << sh.k << " elem " << i;
          }
        }
      }
    }
  }
}

TEST(SimdDispatch, GemmAlphaBetaParity) {
  const auto levels = simd_levels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD level available";
  Rng rng(7);
  const std::int64_t m = 9, n = 21, k = 13;
  const auto a = random_vec(static_cast<std::size_t>(m * k), rng);
  const auto b = random_vec(static_cast<std::size_t>(k * n), rng);
  const auto c0 = random_vec(static_cast<std::size_t>(m * n), rng);
  for (float beta : {0.0f, 1.0f, -0.5f}) {
    std::vector<float> ref = c0;
    {
      SimdScope scope(SimdLevel::scalar);
      be::gemm(Trans::N, Trans::N, m, n, k, 1.25f, a.data(), k, b.data(), n,
               beta, ref.data(), n);
    }
    for (SimdLevel level : levels) {
      SimdScope scope(level);
      std::vector<float> got = c0;
      be::gemm(Trans::N, Trans::N, m, n, k, 1.25f, a.data(), k, b.data(), n,
               beta, got.data(), n);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], ref[i], 1e-4f)
            << be::simd_level_name(level) << " beta=" << beta << " elem " << i;
      }
    }
  }
}

// ---- cgemm dispatch parity -------------------------------------------------

TEST(SimdDispatch, CgemmParityAcrossLevels) {
  const auto levels = simd_levels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD level available";
  const std::pair<CTrans, CTrans> combos[] = {
      {CTrans::N, CTrans::N}, {CTrans::N, CTrans::T}, {CTrans::N, CTrans::H},
      {CTrans::T, CTrans::N}, {CTrans::H, CTrans::N}, {CTrans::H, CTrans::H},
  };
  for (const Shape& sh : kAwkwardShapes) {
    for (const auto& [ta, tb] : combos) {
      Rng rng(17);
      const std::int64_t lda = ta == CTrans::N ? sh.k : sh.m;
      const std::int64_t ldb = tb == CTrans::N ? sh.n : sh.k;
      const std::size_t an =
          static_cast<std::size_t>((ta == CTrans::N ? sh.m : sh.k) * lda);
      const std::size_t bn =
          static_cast<std::size_t>((tb == CTrans::N ? sh.k : sh.n) * ldb);
      const auto ar = random_vec(an, rng), ai = random_vec(an, rng);
      const auto br = random_vec(bn, rng), bi = random_vec(bn, rng);
      const std::size_t cn = static_cast<std::size_t>(sh.m * sh.n);
      std::vector<float> rr(cn), ri(cn);
      {
        SimdScope scope(SimdLevel::scalar);
        be::cgemm(ta, tb, sh.m, sh.n, sh.k, ar.data(), ai.data(), lda,
                  br.data(), bi.data(), ldb, 0.0f, rr.data(), ri.data(), sh.n);
      }
      for (SimdLevel level : levels) {
        SimdScope scope(level);
        std::vector<float> gr(cn, 3.0f), gi(cn, -3.0f);
        be::cgemm(ta, tb, sh.m, sh.n, sh.k, ar.data(), ai.data(), lda,
                  br.data(), bi.data(), ldb, 0.0f, gr.data(), gi.data(), sh.n);
        for (std::size_t i = 0; i < cn; ++i) {
          ASSERT_NEAR(gr[i], rr[i], 2e-4f)
              << be::simd_level_name(level) << " re elem " << i;
          ASSERT_NEAR(gi[i], ri[i], 2e-4f)
              << be::simd_level_name(level) << " im elem " << i;
        }
      }
    }
  }
}

// ---- batched vs per-item, bit-exact at every level -------------------------

TEST(SimdDispatch, CgemmBatchedMatchesPerItemBitExactPerLevel) {
  for (SimdLevel level : be::available_simd_levels()) {
    SimdScope scope(level);
    const std::int64_t batch = 3, m = 5, n = 17, k = 9;  // tile tails everywhere
    const std::size_t item_a = static_cast<std::size_t>(m * k);
    const std::size_t item_b = static_cast<std::size_t>(k * n);
    const std::size_t item_c = static_cast<std::size_t>(m * n);
    Rng rng(23);
    const auto ar = random_vec(batch * item_a, rng), ai = random_vec(batch * item_a, rng);
    const auto br = random_vec(batch * item_b, rng), bi = random_vec(batch * item_b, rng);
    for (std::int64_t stride_b : {static_cast<std::int64_t>(item_b), std::int64_t{0}}) {
      std::vector<float> cr1(batch * item_c), ci1(batch * item_c);
      std::vector<float> cr2(batch * item_c), ci2(batch * item_c);
      be::cgemm_batched(CTrans::N, CTrans::N, batch, m, n, k, ar.data(),
                        ai.data(), item_a, k, br.data(), bi.data(), stride_b,
                        n, 0.0f, cr1.data(), ci1.data(), item_c, n);
      for (std::int64_t t = 0; t < batch; ++t) {
        be::cgemm(CTrans::N, CTrans::N, m, n, k, ar.data() + t * item_a,
                  ai.data() + t * item_a, k, br.data() + t * stride_b,
                  bi.data() + t * stride_b, n, 0.0f, cr2.data() + t * item_c,
                  ci2.data() + t * item_c, n);
      }
      for (std::size_t i = 0; i < cr1.size(); ++i) {
        ASSERT_EQ(cr1[i], cr2[i])
            << be::simd_level_name(level) << " stride_b=" << stride_b
            << " re elem " << i;
        ASSERT_EQ(ci1[i], ci2[i])
            << be::simd_level_name(level) << " stride_b=" << stride_b
            << " im elem " << i;
      }
    }
  }
}

TEST(SimdDispatch, GemmBatchedMatchesPerItemBitExactPerLevel) {
  for (SimdLevel level : be::available_simd_levels()) {
    SimdScope scope(level);
    const std::int64_t batch = 4, m = 7, n = 19, k = 11;
    Rng rng(29);
    const auto a = random_vec(static_cast<std::size_t>(batch * m * k), rng);
    const auto b = random_vec(static_cast<std::size_t>(k * n), rng);
    std::vector<float> c1(static_cast<std::size_t>(batch * m * n));
    std::vector<float> c2(c1.size());
    be::gemm_batched(batch, m, n, k, a.data(), m * k, k, Trans::N, b.data(), n,
                     0.0f, c1.data(), m * n, n);
    for (std::int64_t t = 0; t < batch; ++t) {
      be::gemm(Trans::N, Trans::N, m, n, k, 1.0f, a.data() + t * m * k, k,
               b.data(), n, 0.0f, c2.data() + t * m * n, n);
    }
    for (std::size_t i = 0; i < c1.size(); ++i) {
      ASSERT_EQ(c1[i], c2[i]) << be::simd_level_name(level) << " elem " << i;
    }
  }
}

// ---- rcgemm parity (dense and sparse A, with and without phases) -----------

TEST(SimdDispatch, RcgemmParityAcrossLevels) {
  const auto levels = simd_levels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD level available";
  for (const Shape& sh : kAwkwardShapes) {
    for (Trans ta : {Trans::N, Trans::T}) {
      for (bool phased : {false, true}) {
        Rng rng(31);
        const std::int64_t lda = ta == Trans::N ? sh.k : sh.m;
        const auto a = random_vec(
            static_cast<std::size_t>((ta == Trans::N ? sh.m : sh.k) * lda), rng);
        const std::size_t bn = static_cast<std::size_t>(sh.k * sh.n);
        const auto br = random_vec(bn, rng), bi = random_vec(bn, rng);
        std::vector<float> cc(static_cast<std::size_t>(sh.n));
        std::vector<float> ss(static_cast<std::size_t>(sh.n));
        for (std::int64_t j = 0; j < sh.n; ++j) {
          const float phi = static_cast<float>(rng.uniform(-3.0, 3.0));
          cc[static_cast<std::size_t>(j)] = std::cos(phi);
          ss[static_cast<std::size_t>(j)] = std::sin(phi);
        }
        const std::size_t cn = static_cast<std::size_t>(sh.m * sh.n);
        std::vector<float> rr(cn), ri(cn);
        {
          SimdScope scope(SimdLevel::scalar);
          be::rcgemm(ta, sh.m, sh.n, sh.k, a.data(), lda, br.data(), bi.data(),
                     sh.n, 0.0f, rr.data(), ri.data(), sh.n,
                     phased ? cc.data() : nullptr, phased ? ss.data() : nullptr);
        }
        for (SimdLevel level : levels) {
          SimdScope scope(level);
          std::vector<float> gr(cn), gi(cn);
          be::rcgemm(ta, sh.m, sh.n, sh.k, a.data(), lda, br.data(), bi.data(),
                     sh.n, 0.0f, gr.data(), gi.data(), sh.n,
                     phased ? cc.data() : nullptr, phased ? ss.data() : nullptr);
          for (std::size_t i = 0; i < cn; ++i) {
            ASSERT_NEAR(gr[i], rr[i], 2e-4f)
                << be::simd_level_name(level) << " phased=" << phased
                << " re elem " << i;
            ASSERT_NEAR(gi[i], ri[i], 2e-4f)
                << be::simd_level_name(level) << " phased=" << phased
                << " im elem " << i;
          }
        }
      }
    }
  }
}

TEST(SimdDispatch, RcgemmSparsePermutationOperandStaysCorrect) {
  // A hard permutation routes to the scalar zero-skip path at every level
  // (the wrapper's density probe); results must match the dense formula.
  const std::int64_t k = 16;
  Rng rng(37);
  std::vector<float> p(static_cast<std::size_t>(k * k), 0.0f);
  std::vector<int> perm(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) perm[static_cast<std::size_t>(i)] = static_cast<int>(i);
  for (std::int64_t i = k - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i)))]);
  }
  for (std::int64_t i = 0; i < k; ++i) {
    p[static_cast<std::size_t>(i * k + perm[static_cast<std::size_t>(i)])] = 1.0f;
  }
  const std::size_t kk = static_cast<std::size_t>(k * k);
  const auto br = random_vec(kk, rng), bi = random_vec(kk, rng);
  for (SimdLevel level : be::available_simd_levels()) {
    SimdScope scope(level);
    std::vector<float> cr(kk), ci(kk);
    be::rcgemm(Trans::N, k, k, k, p.data(), k, br.data(), bi.data(), k, 0.0f,
               cr.data(), ci.data(), k);
    for (std::int64_t i = 0; i < k; ++i) {
      const std::int64_t src = perm[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < k; ++j) {
        ASSERT_EQ(cr[static_cast<std::size_t>(i * k + j)],
                  br[static_cast<std::size_t>(src * k + j)]);
        ASSERT_EQ(ci[static_cast<std::size_t>(i * k + j)],
                  bi[static_cast<std::size_t>(src * k + j)]);
      }
    }
  }
}

// ---- thread-count determinism per level ------------------------------------

TEST(SimdDispatch, ThreadCountDeterminismPerLevel) {
  for (SimdLevel level : be::available_simd_levels()) {
    SimdScope scope(level);
    const std::int64_t m = 53, n = 37, k = 41;
    Rng rng(43);
    const auto a = random_vec(static_cast<std::size_t>(m * k), rng);
    const auto b = random_vec(static_cast<std::size_t>(k * n), rng);
    std::vector<float> base(static_cast<std::size_t>(m * n));
    {
      be::ThreadScope one(1);
      be::gemm(Trans::N, Trans::T, m, n, k, 1.0f, a.data(), k, b.data(), k,
               0.0f, base.data(), n);
    }
    for (int threads : {2, 8}) {
      be::ThreadScope t(threads);
      std::vector<float> got(static_cast<std::size_t>(m * n));
      be::gemm(Trans::N, Trans::T, m, n, k, 1.0f, a.data(), k, b.data(), k,
               0.0f, got.data(), n);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], base[i]) << be::simd_level_name(level) << " threads="
                                   << threads << " elem " << i;
      }
    }
    // Complex batched path too (packs + row segmentation differ).
    const std::int64_t batch = 5, cm = 6, cn2 = 13, ck = 10;
    const std::size_t ia = static_cast<std::size_t>(cm * ck);
    const std::size_t ib = static_cast<std::size_t>(ck * cn2);
    const std::size_t ic = static_cast<std::size_t>(cm * cn2);
    const auto ar = random_vec(batch * ia, rng), ai = random_vec(batch * ia, rng);
    const auto br = random_vec(batch * ib, rng), bi = random_vec(batch * ib, rng);
    std::vector<float> r1(batch * ic), i1(batch * ic);
    {
      be::ThreadScope one(1);
      be::cgemm_batched(CTrans::N, CTrans::H, batch, cm, cn2, ck, ar.data(),
                        ai.data(), ia, ck, br.data(), bi.data(), ib, ck, 0.0f,
                        r1.data(), i1.data(), ic, cn2);
    }
    for (int threads : {2, 8}) {
      be::ThreadScope t(threads);
      std::vector<float> r2(batch * ic), i2(batch * ic);
      be::cgemm_batched(CTrans::N, CTrans::H, batch, cm, cn2, ck, ar.data(),
                        ai.data(), ia, ck, br.data(), bi.data(), ib, ck, 0.0f,
                        r2.data(), i2.data(), ic, cn2);
      for (std::size_t i = 0; i < r1.size(); ++i) {
        ASSERT_EQ(r2[i], r1[i]) << "threads=" << threads;
        ASSERT_EQ(i2[i], i1[i]) << "threads=" << threads;
      }
    }
  }
}

// ---- transcendental helpers ------------------------------------------------

TEST(SimdMath, SincosMatchesLibm) {
  const std::int64_t n = 1003;  // vector tail
  std::vector<float> x(static_cast<std::size_t>(n));
  Rng rng(51);
  for (std::int64_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = static_cast<float>(rng.uniform(-12.0, 12.0));
  }
  // Out-of-reduction-range lanes exercise the libm fallback.
  x[0] = 9000.0f;
  x[1] = -50000.0f;
  x[2] = 0.0f;
  for (SimdLevel level : be::available_simd_levels()) {
    SimdScope scope(level);
    std::vector<float> c(static_cast<std::size_t>(n)), s(static_cast<std::size_t>(n));
    be::sincos(n, x.data(), c.data(), s.data());
    for (std::int64_t i = 0; i < n; ++i) {
      const std::size_t is = static_cast<std::size_t>(i);
      EXPECT_NEAR(c[is], std::cos(x[is]), 2e-6f)
          << be::simd_level_name(level) << " x=" << x[is];
      EXPECT_NEAR(s[is], std::sin(x[is]), 2e-6f)
          << be::simd_level_name(level) << " x=" << x[is];
    }
  }
}

TEST(SimdMath, SoftmaxRowsParityAcrossLevels) {
  const std::int64_t rows = 7, cols = 29;  // tail columns
  Rng rng(57);
  std::vector<float> a(static_cast<std::size_t>(rows * cols));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-8.0, 8.0));
  std::vector<float> ref(a.size());
  {
    SimdScope scope(SimdLevel::scalar);
    be::softmax_rows(rows, cols, a.data(), ref.data());
  }
  for (SimdLevel level : simd_levels()) {
    SimdScope scope(level);
    std::vector<float> got(a.size());
    be::softmax_rows(rows, cols, a.data(), got.data());
    double worst_row_sum = 0.0;
    for (std::int64_t i = 0; i < rows; ++i) {
      double z = 0.0;
      for (std::int64_t j = 0; j < cols; ++j) {
        const std::size_t idx = static_cast<std::size_t>(i * cols + j);
        ASSERT_NEAR(got[idx], ref[idx], 1e-6f)
            << be::simd_level_name(level) << " elem " << idx;
        z += got[idx];
      }
      worst_row_sum = std::max(worst_row_sum, std::fabs(z - 1.0));
    }
    EXPECT_LT(worst_row_sum, 1e-5);
  }
}

TEST(SimdMath, LogSoftmaxRowsParityAcrossLevels) {
  const std::int64_t rows = 5, cols = 11;
  Rng rng(61);
  std::vector<float> a(static_cast<std::size_t>(rows * cols));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-6.0, 6.0));
  std::vector<float> ref(a.size());
  {
    SimdScope scope(SimdLevel::scalar);
    be::log_softmax_rows(rows, cols, a.data(), ref.data());
  }
  for (SimdLevel level : simd_levels()) {
    SimdScope scope(level);
    std::vector<float> got(a.size());
    be::log_softmax_rows(rows, cols, a.data(), got.data());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], ref[i], 1e-5f)
          << be::simd_level_name(level) << " elem " << i;
    }
  }
}

TEST(SimdMath, CmulPlanarParityAcrossLevels) {
  const std::size_t n = 517;  // vector tail
  Rng rng(67);
  const auto ar = random_vec(n, rng), ai = random_vec(n, rng);
  const auto br = random_vec(n, rng), bi = random_vec(n, rng);
  std::vector<float> rr(n), ri(n);
  {
    SimdScope scope(SimdLevel::scalar);
    be::cmul_planar(n, ar.data(), ai.data(), br.data(), bi.data(), rr.data(),
                    ri.data());
  }
  for (SimdLevel level : simd_levels()) {
    SimdScope scope(level);
    std::vector<float> gr(n), gi(n);
    be::cmul_planar(n, ar.data(), ai.data(), br.data(), bi.data(), gr.data(),
                    gi.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(gr[i], rr[i], 1e-6f) << be::simd_level_name(level);
      ASSERT_NEAR(gi[i], ri[i], 1e-6f) << be::simd_level_name(level);
    }
  }
}

// ---- portable scalar vec8f (the branch this base-ISA TU instantiates) ------

TEST(SimdScalarVec, LoadStorePartialAndArithmetic) {
  namespace v = be::simd;
  float src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const v::vec8f a = v::load8_partial(src, 5);  // lanes >= 5 zeroed
  float out[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  v::store8(out, a);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], src[i]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(out[i], 0.0f);
  v::store8_partial(out, 3, v::broadcast8(9.0f));
  EXPECT_EQ(out[2], 9.0f);
  EXPECT_EQ(out[3], src[3]);
  // fmadd/fnmadd lane math
  const v::vec8f r = v::fmadd8(v::broadcast8(2.0f), v::load8(src),
                               v::broadcast8(1.0f));
  float rr[8];
  v::store8(rr, r);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rr[i], 2.0f * src[i] + 1.0f);
  EXPECT_EQ(v::hsum8(v::load8(src)), 36.0f);
  EXPECT_EQ(v::hmax8(v::load8(src)), 8.0f);
}

TEST(SimdScalarVec, Exp8AndSincos8MatchLibm) {
  namespace v = be::simd;
  Rng rng(77);
  float x[8], c[8], s[8], e[8];
  for (int round = 0; round < 16; ++round) {
    for (auto& xv : x) xv = static_cast<float>(rng.uniform(-10.0, 10.0));
    v::vec8f vs, vc;
    v::sincos8(v::load8(x), &vs, &vc);
    v::store8(s, vs);
    v::store8(c, vc);
    v::store8(e, v::exp8(v::load8(x)));
    for (int i = 0; i < 8; ++i) {
      EXPECT_NEAR(s[i], std::sin(x[i]), 2e-6f) << "x=" << x[i];
      EXPECT_NEAR(c[i], std::cos(x[i]), 2e-6f) << "x=" << x[i];
      EXPECT_NEAR(e[i], std::exp(x[i]), 1e-5f * std::exp(x[i]) + 1e-7f)
          << "x=" << x[i];
    }
  }
  // Clamp region: no inf/nan out of exp8.
  for (auto& xv : x) xv = 1000.0f;
  v::store8(e, v::exp8(v::load8(x)));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(std::isfinite(e[i]));
}

// ---- dispatch plumbing -----------------------------------------------------

TEST(SimdDispatch, ScopeClampsToAvailableLevels) {
  const auto avail = be::available_simd_levels();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), SimdLevel::scalar);
  {
    // Requesting the highest level never exceeds what the binary+CPU offer.
    SimdScope scope(SimdLevel::avx512);
    const SimdLevel got = be::simd_level();
    EXPECT_NE(std::find(avail.begin(), avail.end(), got), avail.end());
  }
  {
    SimdScope scope(SimdLevel::scalar);
    EXPECT_EQ(be::simd_level(), SimdLevel::scalar);
    EXPECT_EQ(be::active_kernels(), nullptr);
  }
  EXPECT_STREQ(be::simd_level_name(SimdLevel::scalar), "scalar");
  EXPECT_STREQ(be::simd_level_name(SimdLevel::avx2), "avx2");
  EXPECT_STREQ(be::simd_level_name(SimdLevel::avx512), "avx512");
}

TEST(ScratchArena, GrowthAndReuseKeepKernelsCorrect) {
  // Alternating big/small transposed gemms force arena growth, overflow
  // blocks, and consolidation; every call must still match the scalar
  // reference computed at matching dispatch.
  Rng rng(71);
  for (const std::int64_t n : {200, 3, 180, 7, 256, 1}) {
    const auto a = random_vec(static_cast<std::size_t>(n * n), rng);
    const auto b = random_vec(static_cast<std::size_t>(n * n), rng);
    std::vector<float> c1(static_cast<std::size_t>(n * n));
    std::vector<float> c2(c1.size());
    be::gemm(Trans::N, Trans::T, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
             c1.data(), n);
    be::gemm(Trans::N, Trans::T, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
             c2.data(), n);
    for (std::size_t i = 0; i < c1.size(); ++i) {
      ASSERT_EQ(c1[i], c2[i]) << "n=" << n << " elem " << i;
    }
  }
  // Nested scopes hand out disjoint allocations.
  be::ScratchArena::Scope outer;
  float* x = outer.alloc<float>(100);
  {
    be::ScratchArena::Scope inner;
    float* y = inner.alloc<float>(100);
    EXPECT_NE(x, y);
    x[0] = 1.0f;
    y[0] = 2.0f;
    EXPECT_EQ(x[0], 1.0f);
  }
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(x) % be::ScratchArena::kAlign, 0u);
}

}  // namespace
