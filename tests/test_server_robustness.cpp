// Overload-hardened serving: admission control, deadlines, typed failures,
// hot checkpoint reload, crash-safe checkpoint I/O, and the failpoint seams
// that make all of it testable.
//
// Headline guarantees proven here:
//   * reject/shed_oldest admission fails futures with RejectedError instead
//     of blocking, and keeps ACCEPTED-request p99 bounded where block does
//     not (the bench_serve overload scenario measures the same effect).
//   * expired requests fail with DeadlineExceededError and never execute.
//   * shutdown resolves EVERY outstanding future — drained queue entries
//     with values, blocked submitters with ShutdownError; no deadlock.
//   * hammering submit during continuous checkpoint reloads drops zero
//     requests, and every response is bit-identical to the output of the
//     model version that answered it.
//   * a (failpoint-injected) crash mid-save never clobbers the previous
//     good checkpoint; torn reads retry; corrupt files of every truncation
//     length and every single-byte flip fail with an error, never a crash.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/models.h"
#include "nn/onn_layers.h"
#include "photonics/builders.h"
#include "runtime/checkpoint.h"
#include "runtime/compiled_model.h"
#include "runtime/errors.h"
#include "runtime/server.h"

namespace {

namespace ph = adept::photonics;
namespace nn = adept::nn;
namespace rt = adept::runtime;
namespace fp = adept::failpoint;
using adept::Rng;

std::vector<float> random_input(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// Small ONN MLP: ONNLinear(18 -> 10, PTC) + ReLU + ONNLinear(10 -> 4, dense).
nn::OnnModel make_mlp(std::uint64_t seed) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(4));
  Rng rng(seed);
  nn::OnnModel model;
  model.net = std::make_shared<nn::Sequential>();
  auto l1 = std::make_shared<nn::ONNLinear>(18, 10, nn::PtcBinding::fixed(topo), rng);
  auto l2 = std::make_shared<nn::ONNLinear>(10, 4, nn::PtcBinding::dense(), rng);
  model.net->add(l1);
  model.net->add(std::make_shared<nn::ReLU>());
  model.net->add(l2);
  model.onn_layers = {l1.get(), l2.get()};
  return model;
}

// Every robustness test disarms its failpoints even on assertion failure.
class ServerRobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { fp::disarm_all(); }
};

// Plug a 1-worker server: the worker pops this request and stalls inside
// the forward for `stall_us`, leaving the queue free to fill behind it.
std::future<std::vector<float>> plug_worker(rt::Server& server, Rng& rng,
                                            std::int64_t stall_us) {
  fp::arm("server.worker.batch", "1*stall(" + std::to_string(stall_us) + ")");
  auto plug = server.submit(random_input(18, rng));
  // Give the (idle, already-waiting) worker ample time to pop the plug and
  // enter the stall before the caller starts filling the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  return plug;
}

// ---- admission control ---------------------------------------------------

TEST_F(ServerRobustnessTest, RejectPolicyFailsFastWithRejectedError) {
  nn::OnnModel model = make_mlp(61);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  rt::ServerConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 2;
  cfg.policy = rt::OverloadPolicy::reject;
  rt::Server server(cm, cfg);

  Rng rng(1);
  auto plug = plug_worker(server, rng, 400'000);
  auto q1 = server.submit(random_input(18, rng));
  auto q2 = server.submit(random_input(18, rng));
  const auto t0 = std::chrono::steady_clock::now();
  auto q3 = server.submit(random_input(18, rng));  // queue full -> reject, no block
  const double submit_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  EXPECT_LT(submit_ms, 100.0) << "reject must not block";
  EXPECT_THROW(q3.get(), rt::RejectedError);
  EXPECT_EQ(plug.get().size(), 4u);
  EXPECT_EQ(q1.get().size(), 4u);
  EXPECT_EQ(q2.get().size(), 4u);
  const rt::ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.requests, 3u);
}

TEST_F(ServerRobustnessTest, ShedOldestDropsTheOldestQueuedRequest) {
  nn::OnnModel model = make_mlp(67);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  rt::ServerConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 2;
  cfg.policy = rt::OverloadPolicy::shed_oldest;
  rt::Server server(cm, cfg);

  Rng rng(2);
  auto plug = plug_worker(server, rng, 400'000);
  auto q1 = server.submit(random_input(18, rng));
  auto q2 = server.submit(random_input(18, rng));
  auto q3 = server.submit(random_input(18, rng));  // full -> q1 shed, q3 admitted
  EXPECT_THROW(q1.get(), rt::RejectedError);
  EXPECT_EQ(plug.get().size(), 4u);
  EXPECT_EQ(q2.get().size(), 4u);
  EXPECT_EQ(q3.get().size(), 4u);
  const rt::ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

// The bounded-tail claim behind the overload policies: under offered load
// far beyond capacity (every batch slowed by a failpoint stall), `block`
// completes everything but its accepted-request p99 grows with the whole
// backlog, while `reject` keeps the queue — and therefore accepted p99 —
// bounded. bench_serve records the same comparison as a perf artifact.
TEST_F(ServerRobustnessTest, RejectKeepsAcceptedP99BoundedWhereBlockDoesNot) {
  nn::OnnModel model = make_mlp(71);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});

  auto run_policy = [&](rt::OverloadPolicy policy) {
    rt::ServerConfig cfg;
    cfg.threads = 1;
    cfg.max_batch = 4;
    cfg.max_wait_us = 0;
    cfg.queue_capacity = 8;
    cfg.policy = policy;
    rt::Server server(cm, cfg);
    fp::arm("server.worker.batch", "stall(3000)");  // every batch >= 3 ms
    Rng rng(3);
    std::vector<std::future<std::vector<float>>> futures;
    for (int i = 0; i < 64; ++i) futures.push_back(server.submit(random_input(18, rng)));
    int completed = 0;
    for (auto& f : futures) {
      try {
        (void)f.get();
        ++completed;
      } catch (const rt::RejectedError&) {
      }
    }
    const rt::ServerStats stats = server.stats();
    fp::disarm_all();
    return std::pair<int, double>(completed, stats.latency_p99_us);
  };

  const auto [block_done, block_p99] = run_policy(rt::OverloadPolicy::block);
  const auto [reject_done, reject_p99] = run_policy(rt::OverloadPolicy::reject);
  EXPECT_EQ(block_done, 64);       // block completes everything...
  EXPECT_GT(block_p99, reject_p99) // ...but pays for it in the tail
      << "bounded-queue reject should beat block's backlog tail";
  EXPECT_LT(reject_done, 64);      // reject sheds the excess
  EXPECT_GT(reject_done, 0);
}

// ---- deadlines -----------------------------------------------------------

TEST_F(ServerRobustnessTest, ExpiredRequestFailsAtDequeueWithoutExecuting) {
  nn::OnnModel model = make_mlp(73);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  rt::ServerConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  rt::Server server(cm, cfg);

  Rng rng(4);
  auto plug = plug_worker(server, rng, 300'000);
  // Queued behind a 300 ms stall with a 1 ms deadline: expired long before
  // the worker dequeues it.
  auto doomed = server.submit(random_input(18, rng), /*deadline_us=*/1000);
  // No deadline: served normally after the stall.
  auto fine = server.submit(random_input(18, rng), /*deadline_us=*/0);
  EXPECT_THROW(doomed.get(), rt::DeadlineExceededError);
  EXPECT_EQ(fine.get().size(), 4u);
  EXPECT_EQ(plug.get().size(), 4u);
  const rt::ServerStats stats = server.stats();
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.requests, 2u);  // the doomed request never executed
}

TEST_F(ServerRobustnessTest, ConfigDefaultDeadlineApplies) {
  nn::OnnModel model = make_mlp(79);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  rt::ServerConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.deadline_us = 1000;  // every request defaults to a 1 ms deadline
  rt::Server server(cm, cfg);

  Rng rng(5);
  auto plug = plug_worker(server, rng, 300'000);
  auto doomed = server.submit(random_input(18, rng));  // inherits config deadline
  EXPECT_THROW(doomed.get(), rt::DeadlineExceededError);
  EXPECT_EQ(plug.get().size(), 4u);
}

// ---- shutdown ------------------------------------------------------------

TEST_F(ServerRobustnessTest, ShutdownResolvesBlockedSubmitters) {
  nn::OnnModel model = make_mlp(83);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  rt::ServerConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 1;
  cfg.policy = rt::OverloadPolicy::block;
  rt::Server server(cm, cfg);

  Rng rng(6);
  auto plug = plug_worker(server, rng, 300'000);
  auto queued = server.submit(random_input(18, rng));  // fills the 1-slot queue

  // These three block inside submit() on the full queue.
  std::atomic<int> values{0}, shutdown_errors{0}, other{0};
  std::vector<std::thread> submitters;
  for (int i = 0; i < 3; ++i) {
    submitters.emplace_back([&, i] {
      Rng trng(static_cast<std::uint64_t>(100 + i));
      try {
        auto f = server.submit(random_input(18, trng));
        f.get();
        ++values;
      } catch (const rt::ShutdownError&) {
        ++shutdown_errors;
      } catch (...) {
        ++other;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  server.shutdown();  // must not deadlock; wakes every blocked submitter
  for (auto& t : submitters) t.join();

  EXPECT_EQ(values + shutdown_errors, 3) << "every blocked submitter resolved";
  EXPECT_EQ(other, 0);
  EXPECT_EQ(plug.get().size(), 4u);    // in-flight work still answered
  EXPECT_EQ(queued.get().size(), 4u);  // queued work drained, not dropped
  // Late submit after shutdown: typed error, not a crash.
  auto late = server.submit(random_input(18, rng));
  EXPECT_THROW(late.get(), rt::ShutdownError);
}

// ---- worker failure injection -------------------------------------------

TEST_F(ServerRobustnessTest, InjectedWorkerFailureFailsTheBatchNotTheServer) {
  nn::OnnModel model = make_mlp(89);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  rt::ServerConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  rt::Server server(cm, cfg);

  Rng rng(7);
  fp::arm("server.worker.batch", "1*throw");
  auto poisoned = server.submit(random_input(18, rng));
  EXPECT_THROW(poisoned.get(), std::runtime_error);
  // The worker survives an injected forward failure and keeps serving.
  auto next = server.submit(random_input(18, rng));
  EXPECT_EQ(next.get().size(), 4u);
}

// ---- hot checkpoint reload ----------------------------------------------

// The acceptance-criteria hammer: continuous submit during >= 10 reloads,
// zero dropped requests, every response bit-identical to the model version
// that answered it.
TEST_F(ServerRobustnessTest, HotReloadHammerZeroDropsBitExactPerVersion) {
  nn::OnnModel model_a = make_mlp(1001);
  nn::OnnModel model_b = make_mlp(1002);
  const std::string path_a = ::testing::TempDir() + "adept_reload_a.bin";
  const std::string path_b = ::testing::TempDir() + "adept_reload_b.bin";
  rt::save_checkpoint(model_a, path_a);
  rt::save_checkpoint(model_b, path_b);

  auto cm_a = std::make_shared<rt::CompiledModel>(
      rt::CompiledModel::freeze(model_a, {18}));
  rt::CompiledModel cm_b = rt::CompiledModel::freeze(model_b, {18});

  // Expected outputs for both versions over a fixed input pool.
  constexpr int kPool = 24;
  Rng rng(8);
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> expect_a, expect_b;
  bool versions_differ = false;
  for (int i = 0; i < kPool; ++i) {
    inputs.push_back(random_input(18, rng));
    expect_a.push_back(cm_a->run(inputs.back(), 1));
    expect_b.push_back(cm_b.run(inputs.back(), 1));
    versions_differ |= expect_a.back() != expect_b.back();
  }
  ASSERT_TRUE(versions_differ) << "the two versions must be distinguishable";

  rt::ServerConfig cfg;
  cfg.threads = 2;
  cfg.max_batch = 4;
  cfg.max_wait_us = 50;
  cfg.queue_capacity = 256;
  cfg.policy = rt::OverloadPolicy::block;
  rt::Server server(cm_a, cfg);
  const std::uint64_t version_before = server.stats().model_version;

  std::atomic<bool> stop{false};
  struct Pending {
    int idx;
    std::future<std::vector<float>> future;
  };
  std::vector<std::vector<Pending>> per_thread(2);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      int i = t;  // interleave the pool across threads
      while (!stop.load(std::memory_order_relaxed) &&
             per_thread[t].size() < 4000) {
        const int idx = i++ % kPool;
        per_thread[t].push_back({idx, server.submit(inputs[idx])});
      }
    });
  }

  // >= 10 reloads while the hammer runs; each loads + freezes a checkpoint
  // and swaps it in between batches.
  constexpr int kReloads = 12;
  for (int r = 0; r < kReloads; ++r) {
    server.reload(r % 2 == 0 ? path_b : path_a);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  for (auto& t : submitters) t.join();

  std::uint64_t answered = 0;
  for (auto& vec : per_thread) {
    for (auto& p : vec) {
      const std::vector<float> got = p.future.get();  // throws = dropped -> fail
      const bool is_a = got == expect_a[p.idx];
      const bool is_b = got == expect_b[p.idx];
      ASSERT_TRUE(is_a || is_b)
          << "response for input " << p.idx
          << " matches neither model version bit-exactly";
      ++answered;
    }
  }
  EXPECT_GT(answered, 100u);

  const rt::ServerStats stats = server.stats();
  EXPECT_EQ(stats.reloads, static_cast<std::uint64_t>(kReloads));
  EXPECT_NE(stats.model_version, version_before)
      << "reload must swap to a model frozen at a newer param_version";
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.deadline_misses, 0u);
  server.shutdown();
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST_F(ServerRobustnessTest, FailedReloadLeavesOldModelServing) {
  nn::OnnModel model = make_mlp(97);
  auto cm = std::make_shared<rt::CompiledModel>(rt::CompiledModel::freeze(model, {18}));
  const std::string path = ::testing::TempDir() + "adept_reload_fail.bin";
  rt::save_checkpoint(model, path);

  rt::Server server(cm, rt::ServerConfig{.threads = 1, .max_wait_us = 0});
  Rng rng(9);
  const std::vector<float> x = random_input(18, rng);
  const std::vector<float> before = server.submit(x).get();

  // Freeze blows up mid-reload: the old model must keep serving.
  fp::arm("runtime.freeze", "1*throw");
  EXPECT_THROW(server.reload(path), std::runtime_error);
  EXPECT_EQ(server.submit(x).get(), before);
  EXPECT_EQ(server.stats().reloads, 0u);

  // A missing checkpoint file also leaves the old model serving.
  EXPECT_THROW(server.reload(path + ".does-not-exist"), std::runtime_error);
  EXPECT_EQ(server.submit(x).get(), before);
  std::remove(path.c_str());
}

TEST_F(ServerRobustnessTest, SwapModelRejectsShapeMismatch) {
  nn::OnnModel model = make_mlp(101);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  rt::Server server(cm, rt::ServerConfig{.threads = 1});

  // A model with different I/O geometry (4 inputs instead of 18).
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(4));
  Rng rng(11);
  nn::OnnModel other;
  other.net = std::make_shared<nn::Sequential>();
  auto l = std::make_shared<nn::ONNLinear>(4, 4, nn::PtcBinding::fixed(topo), rng);
  other.net->add(l);
  other.onn_layers = {l.get()};
  auto cm_other =
      std::make_shared<rt::CompiledModel>(rt::CompiledModel::freeze(other, {4}));
  EXPECT_THROW(server.swap_model(cm_other), std::invalid_argument);
  EXPECT_THROW(server.swap_model(nullptr), std::invalid_argument);
  // Still serving the original.
  Rng qrng(12);
  EXPECT_EQ(server.submit(random_input(18, qrng)).get().size(), 4u);
}

// ---- crash-safe checkpoints ---------------------------------------------

TEST_F(ServerRobustnessTest, CrashMidSaveNeverClobbersPreviousCheckpoint) {
  nn::OnnModel model_a = make_mlp(103);
  nn::OnnModel model_b = make_mlp(107);
  const std::string path = ::testing::TempDir() + "adept_crash_safe.bin";
  rt::save_checkpoint(model_a, path);
  const std::string bytes_a = rt::encode_checkpoint(model_a);
  const std::string bytes_b = rt::encode_checkpoint(model_b);
  ASSERT_NE(bytes_a, bytes_b);

  // Crash after 40 bytes of the replacement write: path must still hold A.
  fp::arm("checkpoint.save.write", "1*truncate(40)");
  try {
    rt::save_checkpoint(model_b, path);
    FAIL() << "expected simulated crash";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("simulated crash"), std::string::npos);
  }
  rt::LoadedCheckpoint after_crash = rt::load_checkpoint(path);
  EXPECT_EQ(rt::encode_checkpoint(after_crash.model), bytes_a)
      << "previous good checkpoint was clobbered by a torn save";

  // After the failure clears, the same path updates normally.
  rt::save_checkpoint(model_b, path);
  rt::LoadedCheckpoint after_save = rt::load_checkpoint(path);
  EXPECT_EQ(rt::encode_checkpoint(after_save.model), bytes_b);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(ServerRobustnessTest, CheckpointIoErrorsCarryErrnoAndPath) {
  nn::OnnModel model = make_mlp(109);
  const std::string bad_dir = "/nonexistent-adept-dir/ckpt.bin";
  try {
    rt::save_checkpoint(model, bad_dir);
    FAIL() << "expected I/O failure";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(bad_dir), std::string::npos) << msg;
    EXPECT_NE(msg.find("errno"), std::string::npos) << msg;
  }
  try {
    rt::load_checkpoint("/no-such-adept-checkpoint.bin");
    FAIL() << "expected I/O failure";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("/no-such-adept-checkpoint.bin"), std::string::npos) << msg;
    EXPECT_NE(msg.find("errno"), std::string::npos) << msg;
  }
}

TEST_F(ServerRobustnessTest, TornReadRetriesThenSucceeds) {
  nn::OnnModel model = make_mlp(113);
  const std::string path = ::testing::TempDir() + "adept_torn_read.bin";
  rt::save_checkpoint(model, path);
  const std::string bytes = rt::encode_checkpoint(model);

  // First two reads come back torn (truncated at byte 16); the third is
  // clean. load_checkpoint's bounded retry must absorb the tear.
  const std::uint64_t hits_before = fp::hit_count("checkpoint.load.read");
  fp::arm("checkpoint.load.read", "2*truncate(16)");
  rt::LoadedCheckpoint loaded = rt::load_checkpoint(path);
  EXPECT_EQ(rt::encode_checkpoint(loaded.model), bytes);
  EXPECT_EQ(fp::hit_count("checkpoint.load.read"), hits_before + 2);
  std::remove(path.c_str());
}

TEST_F(ServerRobustnessTest, PersistentlyTornReadGivesUpWithTruncationError) {
  nn::OnnModel model = make_mlp(127);
  const std::string path = ::testing::TempDir() + "adept_torn_forever.bin";
  rt::save_checkpoint(model, path);

  fp::arm("checkpoint.load.read", "truncate(16)");  // every read torn
  try {
    rt::load_checkpoint(path);
    FAIL() << "expected truncation error after bounded retries";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

// ---- corrupt-checkpoint fuzz --------------------------------------------

TEST_F(ServerRobustnessTest, FuzzTruncationAtEveryByteFailsActionably) {
  nn::OnnModel model = make_mlp(131);
  const std::string good = rt::encode_checkpoint(model);
  ASSERT_NO_THROW(rt::decode_checkpoint(good));
  // Every prefix — which covers every section boundary — must throw a
  // runtime_error with a non-empty message, and never crash (the ASan leg
  // runs this too).
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    try {
      rt::decode_checkpoint(good.substr(0, cut));
      FAIL() << "decode of " << cut << "-byte prefix unexpectedly succeeded";
    } catch (const std::runtime_error& e) {
      ASSERT_FALSE(std::string(e.what()).empty()) << "cut at " << cut;
    }
  }
  // Spot-check the message quality at the major boundaries.
  auto message_at = [&](std::size_t cut) {
    try {
      rt::decode_checkpoint(good.substr(0, cut));
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message_at(4).find("truncated header"), std::string::npos);
  EXPECT_NE(message_at(20).find("truncated payload"), std::string::npos);
  EXPECT_NE(message_at(good.size() - 2).find("truncated payload"), std::string::npos);
}

TEST_F(ServerRobustnessTest, FuzzSingleByteFlipsEverywhereFailActionably) {
  nn::OnnModel model = make_mlp(137);
  const std::string good = rt::encode_checkpoint(model);
  // Flipping any single bit anywhere — magic, version, payload size,
  // payload, CRC — must be caught (magic/version/size checks up front, the
  // CRC for everything in the payload, the trailer compare for the CRC
  // itself) and throw, never crash or silently load.
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    try {
      rt::decode_checkpoint(bad);
      FAIL() << "decode with byte " << i << " flipped unexpectedly succeeded";
    } catch (const std::runtime_error& e) {
      ASSERT_FALSE(std::string(e.what()).empty()) << "flip at " << i;
    }
  }
}

// ---- new env knobs -------------------------------------------------------

TEST_F(ServerRobustnessTest, PolicyAndDeadlineEnvKnobsClamp) {
  auto with_env = [](const char* name, const char* value, auto fn) {
    ::setenv(name, value, 1);
    fn();
    ::unsetenv(name);
  };

  with_env("ADEPT_SERVE_POLICY", "reject", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().policy, rt::OverloadPolicy::reject);
  });
  with_env("ADEPT_SERVE_POLICY", "shed_oldest", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().policy, rt::OverloadPolicy::shed_oldest);
  });
  with_env("ADEPT_SERVE_POLICY", "block", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().policy, rt::OverloadPolicy::block);
  });
  with_env("ADEPT_SERVE_POLICY", "frobnicate", [] {
    // Unknown names clamp to the default, never error.
    EXPECT_EQ(rt::ServerConfig::from_env().policy, rt::OverloadPolicy::block);
  });
  with_env("ADEPT_SERVE_DEADLINE_US", "-5", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().deadline_us, 0);
  });
  with_env("ADEPT_SERVE_DEADLINE_US", "2000000000", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().deadline_us, 600'000'000);
  });
  with_env("ADEPT_SERVE_DEADLINE_US", "250000", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().deadline_us, 250'000);
  });
  // Unset -> defaults.
  const rt::ServerConfig def = rt::ServerConfig::from_env();
  EXPECT_EQ(def.policy, rt::OverloadPolicy::block);
  EXPECT_EQ(def.deadline_us, 0);
  // Round-trip of the policy names used by the env knob and bench output.
  EXPECT_EQ(rt::to_string(rt::parse_overload_policy("shed_oldest")), "shed_oldest");
  EXPECT_EQ(rt::to_string(rt::parse_overload_policy("reject")), "reject");
}

}  // namespace
