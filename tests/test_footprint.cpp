#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/dc_binarize.h"
#include "core/footprint.h"
#include "core/reparam.h"

namespace {

namespace ag = adept::ag;
namespace core = adept::core;
namespace ph = adept::photonics;
using ag::Tensor;

core::FootprintConfig amf_config(double f_min, double f_max) {
  core::FootprintConfig config;
  config.pdk = ph::Pdk::amf();
  config.f_min = f_min;
  config.f_max = f_max;
  return config;
}

TEST(Footprint, AreaUnitConversion) {
  const ph::Pdk amf = ph::Pdk::amf();
  EXPECT_DOUBLE_EQ(core::ps_area_k(amf), 6.8);
  EXPECT_DOUBLE_EQ(core::dc_area_k(amf), 1.5);
  EXPECT_DOUBLE_EQ(core::cr_area_k(amf), 0.064);
}

TEST(Footprint, MarginHats) {
  const auto config = amf_config(100, 200);
  EXPECT_DOUBLE_EQ(config.f_max_hat(), 190.0);
  EXPECT_DOUBLE_EQ(config.f_min_hat(), 105.0);
}

TEST(Footprint, BlockProxyValueIdentityPerm) {
  // K=8, all couplers on, P~ = I: proxy = K*F_PS + 4*F_DC + 0.
  const auto config = amf_config(0, 1000);
  Tensor t_latent = Tensor::from_data({4}, {-1, -1, -1, -1}, false);
  Tensor tq = core::dc_quantize(t_latent);
  Tensor p = Tensor::eye(8);
  Tensor proxy = core::block_footprint_proxy(8, tq, p, config);
  EXPECT_NEAR(proxy.item(), 8 * 6.8 + 4 * 1.5, 1e-3);
}

TEST(Footprint, BlockProxyGrowsWithPermDeviation) {
  const auto config = amf_config(0, 1000);
  Tensor t_latent = Tensor::from_data({4}, {1, 1, 1, 1}, false);
  Tensor tq = core::dc_quantize(t_latent);
  Tensor eye = Tensor::eye(8);
  Tensor swapped = Tensor::eye(8);
  // swap rows 0/1 -> ||P - I||^2 = 4
  swapped.set_at(0, 0, 0.0f);
  swapped.set_at(1, 1, 0.0f);
  swapped.set_at(0, 1, 1.0f);
  swapped.set_at(1, 0, 1.0f);
  const float base = core::block_footprint_proxy(8, tq, eye, config).item();
  const float moved = core::block_footprint_proxy(8, tq, swapped, config).item();
  EXPECT_NEAR(moved - base, config.beta_cr * 4.0 * 0.064, 1e-2);
}

TEST(Footprint, PenaltyBranchAboveMax) {
  const auto config = amf_config(100, 200);
  Tensor proxy = Tensor::scalar(250.0f, true);
  // true expectation above 0.95*200=190 -> positive penalty beta*proxy/190
  Tensor penalty = core::footprint_penalty(proxy, 210.0, config);
  EXPECT_NEAR(penalty.item(), 10.0 * 250.0 / 190.0, 1e-3);
  penalty.backward();
  EXPECT_GT(proxy.grad()[0], 0.0f);  // pushes footprint down
}

TEST(Footprint, PenaltyBranchBelowMin) {
  const auto config = amf_config(100, 200);
  Tensor proxy = Tensor::scalar(80.0f, true);
  Tensor penalty = core::footprint_penalty(proxy, 90.0, config);
  EXPECT_NEAR(penalty.item(), -10.0 * 80.0 / 105.0, 1e-3);
  penalty.backward();
  EXPECT_LT(proxy.grad()[0], 0.0f);  // pushes footprint up
}

TEST(Footprint, PenaltyZeroInsideBand) {
  const auto config = amf_config(100, 200);
  Tensor proxy = Tensor::scalar(150.0f, true);
  Tensor penalty = core::footprint_penalty(proxy, 150.0, config);
  EXPECT_FLOAT_EQ(penalty.item(), 0.0f);
}

TEST(Footprint, AnalyticalBoundsEq16) {
  // Hand-computed for K=8, AMF, [240, 300] (ADEPT-a1 in Table 1):
  //   F_b,min = 8*6.8 + 1.5 = 55.9
  //   F_b,max = 55.9 + 8*1.5/2 + 8*7*0.064/2 = 55.9 + 6 + 1.792 = 63.692
  //   B_max = ceil(300/55.9) = 6 ; B_min = floor(240/63.692) = 3
  const auto config = amf_config(240, 300);
  const auto bounds = core::analytical_block_bounds(8, config);
  EXPECT_EQ(bounds.b_max, 6);
  EXPECT_EQ(bounds.b_min, 3);
}

TEST(Footprint, BoundsScaleWithBudget) {
  const auto small = core::analytical_block_bounds(8, amf_config(240, 300));
  const auto large = core::analytical_block_bounds(8, amf_config(624, 780));
  EXPECT_GT(large.b_max, small.b_max);
  EXPECT_GE(large.b_min, small.b_min);
}

TEST(Footprint, AimCrossingsDominatePenaltyProxy) {
  // Under AIM, a permutation far from identity must cost much more than
  // under AMF (4900 vs 64 um^2 crossings).
  core::FootprintConfig amf = amf_config(0, 1000);
  core::FootprintConfig aim = amf;
  aim.pdk = ph::Pdk::aim();
  Tensor tq = core::dc_quantize(Tensor::from_data({4}, {1, 1, 1, 1}, false));
  Tensor far = Tensor::full({8, 8}, 0.125f, false);
  const float amf_cost = core::block_footprint_proxy(8, tq, far, amf).item();
  const float aim_cost = core::block_footprint_proxy(8, tq, far, aim).item();
  EXPECT_GT(aim_cost, amf_cost);
}

}  // namespace
