#include <gtest/gtest.h>

#include <numeric>

#include "core/search.h"

namespace {

namespace core = adept::core;
namespace ph = adept::photonics;

core::SearchConfig tiny_config() {
  core::SearchConfig config;
  config.mesh.k = 4;
  config.mesh.super_blocks_per_unitary = 3;
  config.mesh.always_on_per_unitary = 1;
  config.footprint.pdk = ph::Pdk::amf();
  config.footprint.f_min = 40;
  config.footprint.f_max = 240;
  config.epochs = 6;
  config.warmup_epochs = 1;
  config.spl_epoch = 3;
  config.steps_per_epoch = 10;
  config.alm.rho0 = 1e-4;
  config.seed = 21;
  return config;
}

TEST(Search, MatrixFitRunsAndProducesLegalTopology) {
  auto config = tiny_config();
  core::MatrixFitTask task(/*tiles=*/1, /*seed=*/5);
  core::AdeptSearcher searcher(config, task);
  const auto result = searcher.run();
  EXPECT_NO_THROW(result.topology.validate());
  EXPECT_GT(result.topology.u_blocks.size(), 0u);
  EXPECT_GT(result.topology.v_blocks.size(), 0u);
  // Every CR layer is a real permutation after SPL.
  for (const auto* blocks : {&result.topology.u_blocks, &result.topology.v_blocks}) {
    for (const auto& b : *blocks) {
      EXPECT_TRUE(ph::is_valid_permutation(b.perm.map()));
    }
  }
}

TEST(Search, TraceHasOneEntryPerStep) {
  auto config = tiny_config();
  core::MatrixFitTask task(1, 6);
  core::AdeptSearcher searcher(config, task);
  const auto result = searcher.run();
  const std::size_t steps =
      static_cast<std::size_t>(config.epochs * config.steps_per_epoch);
  EXPECT_EQ(result.trace.task_loss.size(), steps);
  EXPECT_EQ(result.trace.alm_rho.size(), steps);
  EXPECT_EQ(result.trace.expected_footprint.size(), steps);
}

TEST(Search, TaskLossDecreases) {
  auto config = tiny_config();
  config.epochs = 8;
  core::MatrixFitTask task(1, 7);
  core::AdeptSearcher searcher(config, task);
  const auto result = searcher.run();
  const auto& loss = result.trace.task_loss;
  const double head =
      std::accumulate(loss.begin(), loss.begin() + 10, 0.0) / 10.0;
  const double tail =
      std::accumulate(loss.end() - 10, loss.end(), 0.0) / 10.0;
  EXPECT_LT(tail, head);
}

TEST(Search, PermutationErrorDropsToZeroAfterSpl) {
  auto config = tiny_config();
  core::MatrixFitTask task(1, 8);
  core::AdeptSearcher searcher(config, task);
  const auto result = searcher.run();
  // After the SPL step the permutations are frozen -> error reported as 0.
  EXPECT_NEAR(result.trace.permutation_error.back(), 0.0, 1e-6);
  EXPECT_TRUE(searcher.mesh().permutations_frozen());
}

TEST(Search, RhoScheduleGrowsDuringTraining) {
  auto config = tiny_config();
  core::MatrixFitTask task(1, 9);
  core::AdeptSearcher searcher(config, task);
  const auto result = searcher.run();
  EXPECT_GT(result.trace.alm_rho.back(), result.trace.alm_rho.front());
}

TEST(Search, DerivesMeshFromBoundsWhenUnset) {
  auto config = tiny_config();
  config.mesh.super_blocks_per_unitary = 0;  // force Eq. 16 derivation
  config.mesh.k = 8;
  config.footprint.f_min = 240;
  config.footprint.f_max = 300;
  core::MatrixFitTask task(1, 10);
  core::AdeptSearcher searcher(config, task);
  EXPECT_EQ(searcher.config().mesh.super_blocks_per_unitary, 3);
  EXPECT_EQ(searcher.config().mesh.always_on_per_unitary, 1);
}

TEST(Search, FootprintPenaltySteersExpectedFootprintIntoBand) {
  // Architecture-driving property behind Fig. 5(b): with a tight budget the
  // expected footprint must decrease over training.
  auto config = tiny_config();
  config.mesh.k = 8;
  config.mesh.super_blocks_per_unitary = 6;
  config.mesh.always_on_per_unitary = 1;
  config.footprint.f_min = 100;
  config.footprint.f_max = 260;  // forces dropping blocks (all-on ~ way more)
  config.epochs = 8;
  config.warmup_epochs = 1;
  config.spl_epoch = 4;
  core::MatrixFitTask task(1, 11);
  core::AdeptSearcher searcher(config, task);
  const auto result = searcher.run();
  const auto& ef = result.trace.expected_footprint;
  const double head = std::accumulate(ef.begin(), ef.begin() + 10, 0.0) / 10.0;
  const double tail = std::accumulate(ef.end() - 10, ef.end(), 0.0) / 10.0;
  EXPECT_LT(tail, head);
}

TEST(Search, MetricImprovesOverUntrained) {
  auto config = tiny_config();
  config.epochs = 8;
  core::MatrixFitTask fresh(1, 12);
  {
    // Untrained baseline metric.
    adept::Rng rng(1);
    core::SuperMesh mesh(config.mesh, rng);
    fresh.bind(mesh);
    core::MatrixFitTask trained(1, 12);
    core::AdeptSearcher searcher(config, trained);
    const double untrained = fresh.metric(mesh);
    const auto result = searcher.run();
    EXPECT_GT(result.final_metric, untrained);
  }
}

}  // namespace
