#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "photonics/linalg.h"
#include "photonics/permutation.h"

namespace {

namespace ph = adept::photonics;
using adept::Rng;

ph::RMat random_rmat(std::int64_t n, Rng& rng) {
  ph::RMat m(n, n);
  for (auto& v : m.data()) v = rng.uniform(-1, 1);
  return m;
}

TEST(CMat, IdentityMultiply) {
  ph::CMat i = ph::CMat::identity(3);
  ph::CMat m(3, 3);
  m.at(0, 1) = ph::cplx(1, 2);
  m.at(2, 0) = ph::cplx(-1, 0.5);
  EXPECT_LT((i * m).max_abs_diff(m), 1e-12);
  EXPECT_LT((m * i).max_abs_diff(m), 1e-12);
}

TEST(CMat, AdjointProperties) {
  ph::CMat m(2, 2);
  m.at(0, 1) = ph::cplx(1, 2);
  ph::CMat a = m.adjoint();
  EXPECT_EQ(a.at(1, 0), std::conj(ph::cplx(1, 2)));
}

TEST(CMat, MatVec) {
  ph::CMat m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = ph::cplx(0, 1);
  m.at(1, 0) = 2;
  const auto y = m * std::vector<ph::cplx>{ph::cplx(1, 0), ph::cplx(0, 1)};
  // y0 = 1*(1) + i*(i) = 0 ;  y1 = 2*(1) + 0 = 2
  EXPECT_NEAR(std::abs(y[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1] - ph::cplx(2, 0)), 0.0, 1e-12);
}

TEST(CMat, UnitarityError) {
  ph::CMat u(2, 2);
  const double s = std::sqrt(2.0) / 2.0;
  u.at(0, 0) = s;
  u.at(0, 1) = ph::cplx(0, s);
  u.at(1, 0) = ph::cplx(0, s);
  u.at(1, 1) = s;
  EXPECT_LT(u.unitarity_error(), 1e-12);
  u.at(0, 0) = 2.0;
  EXPECT_GT(u.unitarity_error(), 1.0);
}

class JacobiSvdTest : public ::testing::TestWithParam<int> {};

TEST_P(JacobiSvdTest, ReconstructsMatrix) {
  const int n = GetParam();
  Rng rng(1000 + n);
  ph::RMat a = random_rmat(n, rng);
  const ph::SvdResult svd = ph::jacobi_svd(a);
  // U diag(s) V^T == A
  ph::RMat us(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      us.at(i, j) = svd.u.at(i, j) * svd.s[static_cast<std::size_t>(j)];
    }
  }
  const ph::RMat recon = us * svd.v.transposed();
  EXPECT_LT(recon.max_abs_diff(a), 1e-8);
}

TEST_P(JacobiSvdTest, FactorsAreOrthogonal) {
  const int n = GetParam();
  Rng rng(2000 + n);
  ph::RMat a = random_rmat(n, rng);
  const ph::SvdResult svd = ph::jacobi_svd(a);
  const ph::RMat uu = svd.u.transposed() * svd.u;
  const ph::RMat vv = svd.v.transposed() * svd.v;
  EXPECT_LT(uu.max_abs_diff(ph::RMat::identity(n)), 1e-8);
  EXPECT_LT(vv.max_abs_diff(ph::RMat::identity(n)), 1e-8);
}

TEST_P(JacobiSvdTest, SingularValuesNonNegative) {
  const int n = GetParam();
  Rng rng(3000 + n);
  const ph::SvdResult svd = ph::jacobi_svd(random_rmat(n, rng));
  for (double s : svd.s) EXPECT_GE(s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiSvdTest, ::testing::Values(2, 4, 8, 16, 32));

TEST(Procrustes, OutputIsOrthogonal) {
  Rng rng(7);
  for (int n : {3, 8, 16}) {
    ph::RMat q = ph::procrustes_orthogonalize(random_rmat(n, rng));
    const ph::RMat qq = q.transposed() * q;
    EXPECT_LT(qq.max_abs_diff(ph::RMat::identity(n)), 1e-8);
  }
}

TEST(Procrustes, RecoversPermutationFromNoisyCopy) {
  Rng rng(8);
  const auto perm = ph::Permutation::random(8, rng);
  ph::RMat noisy = perm.to_matrix();
  for (auto& v : noisy.data()) v += rng.normal(0.0, 0.05);
  const ph::RMat q = ph::procrustes_orthogonalize(noisy);
  // q should be close to the permutation matrix
  EXPECT_LT(q.max_abs_diff(perm.to_matrix()), 0.3);
}

TEST(Procrustes, IdentityFixedPoint) {
  const ph::RMat i = ph::RMat::identity(5);
  EXPECT_LT(ph::procrustes_orthogonalize(i).max_abs_diff(i), 1e-9);
}

TEST(JacobiSvd, RejectsNonSquare) {
  EXPECT_THROW(ph::jacobi_svd(ph::RMat(2, 3)), std::invalid_argument);
}

TEST(JacobiSvd, HandlesRankDeficiency) {
  ph::RMat a(3, 3);  // rank 1
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a.at(i, j) = (i + 1) * (j + 1);
  }
  const ph::SvdResult svd = ph::jacobi_svd(a);
  int nonzero = 0;
  for (double s : svd.s) nonzero += s > 1e-9 ? 1 : 0;
  EXPECT_EQ(nonzero, 1);
}

}  // namespace
