// Batched multi-tile mesh evaluation: cgemm_batched and the batched chain
// ops must be bit-exact against the per-tile compositions they replace —
// values AND gradients, at any thread count — and the materialized
// eval-weight cache must invalidate exactly on parameter/noise version
// bumps (optimizer step, set_phase_noise, begin_step).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "autograd/complex.h"
#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "backend/kernels.h"
#include "backend/parallel.h"
#include "common/rng.h"
#include "common/version.h"
#include "core/supermesh.h"
#include "nn/onn_layers.h"
#include "optim/optimizer.h"
#include "photonics/builders.h"

namespace {

namespace ag = adept::ag;
namespace be = adept::backend;
namespace core = adept::core;
namespace nn = adept::nn;
namespace ph = adept::photonics;
using adept::Rng;
using ag::CxTensor;
using ag::Tensor;

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1, 1));
  return v;
}

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng, bool rg = false) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  return ag::make_tensor(random_vec(static_cast<std::size_t>(n), rng),
                         std::move(shape), rg);
}

// ---- cgemm_batched vs per-item cgemm --------------------------------------

void check_cgemm_batched_variant(be::CTrans ta, be::CTrans tb, float beta) {
  const std::int64_t t = 5, k = 9;  // odd K exercises the pairing tail
  Rng rng(7);
  const std::size_t kk = static_cast<std::size_t>(k * k);
  std::vector<float> ar = random_vec(t * kk, rng), ai = random_vec(t * kk, rng);
  std::vector<float> br = random_vec(t * kk, rng), bi = random_vec(t * kk, rng);
  std::vector<float> seed_c = random_vec(t * kk, rng), seed_ci = random_vec(t * kk, rng);
  std::vector<float> ref_r = seed_c, ref_i = seed_ci;
  for (std::int64_t ti = 0; ti < t; ++ti) {
    be::cgemm(ta, tb, k, k, k, ar.data() + ti * kk, ai.data() + ti * kk, k,
              br.data() + ti * kk, bi.data() + ti * kk, k, beta,
              ref_r.data() + ti * kk, ref_i.data() + ti * kk, k);
  }
  for (int threads : {1, 2, 8}) {
    be::ThreadScope scope(threads);
    std::vector<float> out_r = seed_c, out_i = seed_ci;
    be::cgemm_batched(ta, tb, t, k, k, k, ar.data(), ai.data(), kk, k,
                      br.data(), bi.data(), kk, k, beta, out_r.data(),
                      out_i.data(), kk, k);
    for (std::size_t i = 0; i < out_r.size(); ++i) {
      ASSERT_EQ(out_r[i], ref_r[i]) << "re elem " << i << " threads " << threads;
      ASSERT_EQ(out_i[i], ref_i[i]) << "im elem " << i << " threads " << threads;
    }
  }
}

TEST(CgemmBatched, BitExactVsPerItemAllVariants) {
  for (be::CTrans ta : {be::CTrans::N, be::CTrans::T, be::CTrans::H}) {
    for (be::CTrans tb : {be::CTrans::N, be::CTrans::T, be::CTrans::H}) {
      check_cgemm_batched_variant(ta, tb, 0.0f);
      check_cgemm_batched_variant(ta, tb, 1.0f);
    }
  }
}

TEST(CgemmBatched, SharedOperandsViaZeroStride) {
  const std::int64_t t = 4, k = 8;
  Rng rng(9);
  const std::size_t kk = static_cast<std::size_t>(k * k);
  std::vector<float> ar = random_vec(t * kk, rng), ai = random_vec(t * kk, rng);
  std::vector<float> br = random_vec(kk, rng), bi = random_vec(kk, rng);
  for (be::CTrans tb : {be::CTrans::N, be::CTrans::T, be::CTrans::H}) {
    std::vector<float> ref_r(t * kk), ref_i(t * kk);
    for (std::int64_t ti = 0; ti < t; ++ti) {
      be::cgemm(be::CTrans::N, tb, k, k, k, ar.data() + ti * kk,
                ai.data() + ti * kk, k, br.data(), bi.data(), k, 0.0f,
                ref_r.data() + ti * kk, ref_i.data() + ti * kk, k);
    }
    for (int threads : {1, 2, 8}) {
      be::ThreadScope scope(threads);
      std::vector<float> out_r(t * kk), out_i(t * kk);
      be::cgemm_batched(be::CTrans::N, tb, t, k, k, k, ar.data(), ai.data(),
                        kk, k, br.data(), bi.data(), /*stride_b=*/0, k, 0.0f,
                        out_r.data(), out_i.data(), kk, k);
      for (std::size_t i = 0; i < out_r.size(); ++i) {
        ASSERT_EQ(out_r[i], ref_r[i]);
        ASSERT_EQ(out_i[i], ref_i[i]);
      }
    }
    // Shared A (stride_a = 0) against the same per-item loop.
    std::vector<float> ref2_r(t * kk), ref2_i(t * kk);
    for (std::int64_t ti = 0; ti < t; ++ti) {
      be::cgemm(be::CTrans::N, tb, k, k, k, ar.data(), ai.data(), k,
                br.data(), bi.data(), k, 0.0f, ref2_r.data() + ti * kk,
                ref2_i.data() + ti * kk, k);
    }
    std::vector<float> out_r(t * kk), out_i(t * kk);
    be::cgemm_batched(be::CTrans::N, tb, t, k, k, k, ar.data(), ai.data(),
                      /*stride_a=*/0, k, br.data(), bi.data(), 0, k, 0.0f,
                      out_r.data(), out_i.data(), kk, k);
    for (std::size_t i = 0; i < out_r.size(); ++i) {
      ASSERT_EQ(out_r[i], ref2_r[i]);
      ASSERT_EQ(out_i[i], ref2_i[i]);
    }
  }
}

// ---- batched tape ops: gradchecks -----------------------------------------

TEST(BatchedOps, BcmatmulGradcheck) {
  Rng rng(11);
  const std::int64_t t = 2, k = 3;
  auto fn = [&](const std::vector<Tensor>& in) {
    CxTensor a{in[0], in[1]}, b{in[2], in[3]};
    CxTensor c = ag::bcmatmul(a, b);
    return ag::add(ag::sum(ag::square(c.re)), ag::sum(ag::square(c.im)));
  };
  auto result = ag::gradcheck(fn, {random_tensor({t, k, k}, rng, true),
                                   random_tensor({t, k, k}, rng, true),
                                   random_tensor({t, k, k}, rng, true),
                                   random_tensor({t, k, k}, rng, true)});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(BatchedOps, BblockTransferGradcheck) {
  Rng rng(12);
  const std::int64_t t = 2, k = 4;
  auto fn = [&](const std::vector<Tensor>& in) {
    CxTensor tc{in[1], in[2]};
    CxTensor out = ag::bblock_transfer(in[0], tc, in[3]);
    return ag::add(ag::sum(ag::square(out.re)), ag::sum(ag::square(out.im)));
  };
  auto result = ag::gradcheck(fn, {random_tensor({k, k}, rng, true),
                                   random_tensor({k, k}, rng, true),
                                   random_tensor({k, k}, rng, true),
                                   random_tensor({t, k}, rng, true)});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(BatchedOps, BcolphaseScaleGradcheck) {
  Rng rng(13);
  const std::int64_t t = 3, k = 4;
  auto fn = [&](const std::vector<Tensor>& in) {
    CxTensor a{in[0], in[1]};
    CxTensor out = ag::bcolphase_scale(a, in[2]);
    return ag::add(ag::sum(ag::square(out.re)), ag::sum(ag::square(out.im)));
  };
  auto result = ag::gradcheck(fn, {random_tensor({k, k}, rng, true),
                                   random_tensor({k, k}, rng, true),
                                   random_tensor({t, k}, rng, true)});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(BatchedOps, BcmixIdentityGradcheck) {
  Rng rng(14);
  const std::int64_t t = 2, k = 3;
  auto fn = [&](const std::vector<Tensor>& in) {
    CxTensor block{in[2], in[3]};
    CxTensor out = ag::bcmix_identity(in[0], in[1], block);
    return ag::add(ag::sum(ag::square(out.re)), ag::sum(ag::square(out.im)));
  };
  auto result = ag::gradcheck(fn, {Tensor::scalar(0.3f, true),
                                   Tensor::scalar(0.7f, true),
                                   random_tensor({t, k, k}, rng, true),
                                   random_tensor({t, k, k}, rng, true)});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(BatchedOps, BscaleColsAndTileColSumGradcheck) {
  Rng rng(15);
  const std::int64_t t = 3, n = 4, m = 2;
  auto fn = [&](const std::vector<Tensor>& in) {
    return ag::sum(ag::square(ag::bscale_cols(in[0], in[1])));
  };
  auto result = ag::gradcheck(fn, {random_tensor({t, n, m}, rng, true),
                                   random_tensor({t, m}, rng, true)});
  EXPECT_TRUE(result.ok) << result.detail;
  auto fn2 = [&](const std::vector<Tensor>& in) {
    return ag::sum(ag::square(ag::tile_col_sum(in[0])));
  };
  auto result2 = ag::gradcheck(fn2, {random_tensor({t, n, m}, rng, true)});
  EXPECT_TRUE(result2.ok) << result2.detail;
}

TEST(BatchedOps, BlockMatrixStackedMatchesTileList) {
  Rng rng(16);
  const std::int64_t p = 2, q = 3, k = 4;
  Tensor stacked = random_tensor({p * q, k, k}, rng, true);
  std::vector<Tensor> tiles;
  for (std::int64_t t = 0; t < p * q; ++t) {
    std::vector<float> d(stacked.data().begin() + t * k * k,
                         stacked.data().begin() + (t + 1) * k * k);
    tiles.push_back(ag::make_tensor(std::move(d), {k, k}, false));
  }
  Tensor a = ag::block_matrix(stacked, p, q);
  Tensor b = ag::block_matrix(tiles, p, q);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]);
  }
  auto fn = [&](const std::vector<Tensor>& in) {
    return ag::sum(ag::square(ag::block_matrix(in[0], p, q)));
  };
  auto result = ag::gradcheck(fn, {stacked});
  EXPECT_TRUE(result.ok) << result.detail;
}

// ---- batched vs per-tile weight_expr: bit-exactness -----------------------

// Runs fwd+bwd through `expr()` with a sum-of-squares head and returns the
// gradient snapshot of every parameter. `reset` rebuilds any shared step
// expressions before the pass: backward passes accumulate into intermediate
// node grads, so tapes reused across two backward calls (something normal
// training never does — one backward per begin_step) must be rebuilt.
std::vector<std::vector<float>> grads_of(nn::PtcWeight& w, Tensor (nn::PtcWeight::*expr)(),
                                         std::vector<Tensor> params,
                                         const std::function<void()>& reset) {
  reset();
  for (auto& p : params) p.zero_grad();
  Tensor out = (w.*expr)();
  ag::sum(ag::square(out)).backward();
  std::vector<std::vector<float>> grads;
  for (auto& p : params) grads.push_back(p.grad());
  return grads;
}

void expect_weight_paths_bit_exact(
    nn::PtcWeight& w, std::vector<Tensor> params,
    const std::function<void()>& reset = [] {}) {
  for (int threads : {1, 2, 8}) {
    be::ThreadScope scope(threads);
    reset();
    Tensor batched = w.weight_expr();
    Tensor per_tile = w.weight_expr_per_tile();
    ASSERT_EQ(batched.shape(), per_tile.shape());
    for (std::size_t i = 0; i < batched.data().size(); ++i) {
      ASSERT_EQ(batched.data()[i], per_tile.data()[i])
          << "value elem " << i << " threads " << threads;
    }
    const auto gb = grads_of(w, &nn::PtcWeight::weight_expr, params, reset);
    const auto gp = grads_of(w, &nn::PtcWeight::weight_expr_per_tile, params, reset);
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
      ASSERT_EQ(gb[pi].size(), gp[pi].size());
      for (std::size_t i = 0; i < gb[pi].size(); ++i) {
        ASSERT_EQ(gb[pi][i], gp[pi][i])
            << "param " << pi << " grad elem " << i << " threads " << threads;
      }
    }
  }
}

TEST(BatchedWeight, FixedTopologyBitExactMultiTile) {
  Rng rng(21);
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  // 20 x 14 with K=8 -> 3x2 tile grid with slicing.
  nn::PtcWeight w(20, 14, nn::PtcBinding::fixed(topo), rng);
  EXPECT_EQ(w.tile_rows(), 3);
  EXPECT_EQ(w.tile_cols(), 2);
  expect_weight_paths_bit_exact(w, w.parameters());
}

TEST(BatchedWeight, SuperMeshBitExactMultiTile) {
  Rng rng(22);
  core::SuperMeshConfig config;
  config.k = 4;
  config.super_blocks_per_unitary = 3;
  config.always_on_per_unitary = 1;
  core::SuperMesh mesh(config, rng);
  nn::PtcWeight w(8, 8, nn::PtcBinding::searched(&mesh), rng);
  // Both the layer parameters and the mesh's search parameters (theta
  // logits, coupler latents, relaxed permutations) must agree to the bit —
  // the mesh params see reverse-tile-order accumulation in both paths.
  std::vector<Tensor> params = w.parameters();
  for (auto& t : mesh.arch_params()) params.push_back(t);
  for (auto& t : mesh.topology_weights()) params.push_back(t);
  // Rebuild the step expressions (same Gumbel draws) before every pass so
  // each backward sees a fresh tape.
  const Rng step_rng = rng;
  expect_weight_paths_bit_exact(w, params, [&] {
    Rng r = step_rng;
    mesh.begin_step(1.0, r, /*stochastic=*/true);
  });
}

TEST(BatchedWeight, SuperMeshBitExactAfterLegalization) {
  Rng rng(23);
  core::SuperMeshConfig config;
  config.k = 4;
  config.super_blocks_per_unitary = 2;
  config.always_on_per_unitary = 2;  // deterministic chain
  core::SuperMesh mesh(config, rng);
  nn::PtcWeight w(8, 4, nn::PtcBinding::searched(&mesh), rng);
  mesh.legalize_permutations(rng);
  std::vector<Tensor> params = w.parameters();
  for (auto& t : mesh.topology_weights()) params.push_back(t);
  const Rng step_rng = rng;
  expect_weight_paths_bit_exact(w, params, [&] {
    Rng r = step_rng;
    mesh.begin_step(0.5, r, /*stochastic=*/false);
  });
}

// ---- eval-time weight cache ----------------------------------------------

TEST(WeightCache, ReusedUnderNoGradUntilOptimizerStep) {
  Rng rng(31);
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  nn::ONNLinear fc(8, 8, nn::PtcBinding::fixed(topo), rng, /*bias=*/false);
  auto params = fc.parameters();
  adept::optim::Sgd opt(params, 0.1);
  {
    ag::NoGradGuard guard;
    Tensor w1 = fc.weight().weight_expr();
    Tensor w2 = fc.weight().weight_expr();
    EXPECT_EQ(w1.impl(), w2.impl());  // same materialized tensor reused
    // An optimizer step bumps the version: the cache must rebuild.
    for (auto& p : params) {
      auto& g = p.grad();
      for (auto& v : g) v = 0.25f;
    }
    opt.step();
    Tensor w3 = fc.weight().weight_expr();
    EXPECT_NE(w1.impl(), w3.impl());
    bool changed = false;
    for (std::size_t i = 0; i < w1.data().size(); ++i) {
      changed = changed || w1.data()[i] != w3.data()[i];
    }
    EXPECT_TRUE(changed);
  }
  // With gradients tracked the expression must be rebuilt every time (it
  // has to be part of the fresh tape).
  Tensor w4 = fc.weight().weight_expr();
  Tensor w5 = fc.weight().weight_expr();
  EXPECT_NE(w4.impl(), w5.impl());
}

TEST(WeightCache, InvalidatedBySetPhaseNoise) {
  Rng rng(32);
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  nn::ONNLinear fc(8, 8, nn::PtcBinding::fixed(topo), rng, false);
  ag::NoGradGuard guard;
  Tensor w1 = fc.weight().weight_expr();
  fc.set_phase_noise(0.05, 99);
  // Noise active: never cached (fresh drift per forward).
  Tensor n1 = fc.weight().weight_expr();
  Tensor n2 = fc.weight().weight_expr();
  EXPECT_NE(n1.impl(), n2.impl());
  bool differs = false;
  for (std::size_t i = 0; i < n1.data().size(); ++i) {
    differs = differs || n1.data()[i] != n2.data()[i];
  }
  EXPECT_TRUE(differs);
  // Back to nominal: cache again, and the nominal weight is recovered.
  fc.set_phase_noise(0.0, 0);
  Tensor w2 = fc.weight().weight_expr();
  EXPECT_EQ(w2.impl(), fc.weight().weight_expr().impl());
  for (std::size_t i = 0; i < w1.data().size(); ++i) {
    ASSERT_EQ(w1.data()[i], w2.data()[i]);
  }
}

TEST(WeightCache, InvalidatedByBeginStep) {
  Rng rng(33);
  core::SuperMeshConfig config;
  config.k = 4;
  config.super_blocks_per_unitary = 2;
  config.always_on_per_unitary = 1;
  core::SuperMesh mesh(config, rng);
  nn::ONNLinear fc(4, 4, nn::PtcBinding::searched(&mesh), rng, false);
  mesh.begin_step(1.0, rng, /*stochastic=*/true);
  ag::NoGradGuard guard;
  Tensor w1 = fc.weight().weight_expr();
  EXPECT_EQ(w1.impl(), fc.weight().weight_expr().impl());
  mesh.begin_step(1.0, rng, /*stochastic=*/true);  // fresh Gumbel sample
  Tensor w2 = fc.weight().weight_expr();
  EXPECT_NE(w1.impl(), w2.impl());
}

// ---- state-leak regressions (the two bugfixes) ----------------------------

}  // namespace
