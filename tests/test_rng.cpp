#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace {

using adept::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(1.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, GumbelIsFiniteAndCentered) {
  Rng rng(6);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gumbel();
    ASSERT_TRUE(std::isfinite(g));
    sum += g;
  }
  // Gumbel(0,1) mean is the Euler-Mascheroni constant ~0.5772.
  EXPECT_NEAR(sum / n, 0.5772, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(8);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  int fixed = 0;
  for (int i = 0; i < 100; ++i) fixed += v[static_cast<std::size_t>(i)] == i ? 1 : 0;
  EXPECT_LT(fixed, 20);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(9);
  Rng child = a.split();
  // The child stream should not be identical to the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == child.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(10);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

}  // namespace
