#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/tensor.h"

namespace {

namespace ag = adept::ag;
using ag::Tensor;

TEST(Tensor, Factories) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.dim(0), 2);
  EXPECT_EQ(z.dim(1), 3);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);

  Tensor f = Tensor::full({4}, 2.5f);
  for (float v : f.data()) EXPECT_EQ(v, 2.5f);

  Tensor e = Tensor::eye(3);
  EXPECT_EQ(e.at(0, 0), 1.0f);
  EXPECT_EQ(e.at(0, 1), 0.0f);
  EXPECT_EQ(e.at(2, 2), 1.0f);

  Tensor s = Tensor::scalar(7.0f);
  EXPECT_EQ(s.item(), 7.0f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_THROW(Tensor::from_data({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
  Tensor t = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, ItemRequiresScalar) {
  Tensor t = Tensor::zeros({2});
  EXPECT_THROW(t.item(), std::invalid_argument);
}

TEST(Tensor, BackwardSimpleChain) {
  // y = (x * 3) + 2, dy/dx = 3
  Tensor x = Tensor::scalar(5.0f, true);
  Tensor y = ag::add_scalar(ag::mul_scalar(x, 3.0f), 2.0f);
  EXPECT_FLOAT_EQ(y.item(), 17.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
}

TEST(Tensor, GradAccumulatesOverSharedSubexpression) {
  // y = x + x -> dy/dx = 2
  Tensor x = Tensor::scalar(1.0f, true);
  Tensor y = ag::add(x, x);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(Tensor, DiamondGraphBackward) {
  // a = x*2 ; b = x*3 ; y = a*b = 6x^2 ; dy/dx = 12x
  Tensor x = Tensor::scalar(2.0f, true);
  Tensor a = ag::mul_scalar(x, 2.0f);
  Tensor b = ag::mul_scalar(x, 3.0f);
  Tensor y = ag::mul(a, b);
  y.backward();
  EXPECT_FLOAT_EQ(y.item(), 24.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 24.0f);
}

TEST(Tensor, BackwardTwiceAccumulates) {
  Tensor x = Tensor::scalar(1.0f, true);
  Tensor y = ag::mul_scalar(x, 4.0f);
  y.backward();
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(Tensor, NonScalarBackwardNeedsSeed) {
  Tensor x = Tensor::from_data({2}, {1, 2}, true);
  Tensor y = ag::mul_scalar(x, 2.0f);
  EXPECT_THROW(y.backward(), std::invalid_argument);
  std::vector<float> seed = {1.0f, 10.0f};
  y.backward(&seed);
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 20.0f);
}

TEST(Tensor, NoGradGuardDisablesGraph) {
  Tensor x = Tensor::scalar(1.0f, true);
  {
    ag::NoGradGuard guard;
    Tensor y = ag::mul_scalar(x, 2.0f);
    EXPECT_FALSE(y.requires_grad());
  }
  Tensor y = ag::mul_scalar(x, 2.0f);
  EXPECT_TRUE(y.requires_grad());
}

TEST(Tensor, DetachClearsGraph) {
  Tensor x = Tensor::scalar(1.0f, true);
  Tensor y = ag::mul_scalar(x, 2.0f);
  y.detach_();
  y.backward();  // no-op into x
  EXPECT_FALSE(x.has_grad());
}

TEST(Tensor, DeepChainBackwardDoesNotOverflow) {
  // Iterative topo sort must handle long chains (SuperMesh depth).
  Tensor x = Tensor::scalar(1.0f, true);
  Tensor y = x;
  for (int i = 0; i < 5000; ++i) y = ag::add_scalar(y, 0.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

}  // namespace
