// runtime/plan.h: the freeze-time planning passes.
//
// The contract under test (see plan.h's header): every fp32 transformation —
// BatchNorm epilogue fusion, conv sample-block tiling, liveness-based slot
// reuse, weight pre-packing — preserves the exact per-element float
// operation sequence, so the OPTIMIZED plan is ASSERT_EQ-bit-identical to
// the unoptimized reference chain (and, transitively via test_runtime.cpp,
// to the tape). The opt-in int8 mode is exempt from that contract but makes
// its own promises: integer kernels are bit-identical across SIMD levels,
// results are independent of micro-batch composition, and outputs stay
// close to fp32.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "backend/dispatch.h"
#include "backend/kernels.h"
#include "common/rng.h"
#include "common/version.h"
#include "data/synthetic.h"
#include "nn/layers.h"
#include "nn/models.h"
#include "nn/train.h"
#include "photonics/builders.h"
#include "runtime/compiled_model.h"

namespace {

namespace be = adept::backend;
namespace ph = adept::photonics;
namespace nn = adept::nn;
namespace rt = adept::runtime;
using adept::Rng;

std::vector<float> random_input(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// ONN MLP with awkward (odd) widths so the int8 k-pair path exercises its
// zero-padded tail: 17 -> 9 -> 4.
nn::OnnModel make_mlp(std::uint64_t seed) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(4));
  Rng rng(seed);
  nn::OnnModel model;
  model.net = std::make_shared<nn::Sequential>();
  auto l1 =
      std::make_shared<nn::ONNLinear>(17, 9, nn::PtcBinding::fixed(topo), rng);
  auto l2 = std::make_shared<nn::ONNLinear>(9, 4, nn::PtcBinding::dense(), rng);
  model.net->add(l1);
  model.net->add(std::make_shared<nn::ReLU>());
  model.net->add(l2);
  model.onn_layers = {l1.get(), l2.get()};
  return model;
}

// Proxy CNN (conv-BN-ReLU x2, avgpool, fc) on 1x12x12; BN running stats are
// made non-trivial with a short training run so epilogue fusion has real
// mu/var to reproduce.
nn::OnnModel make_trained_cnn(std::uint64_t seed) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  Rng rng(seed);
  nn::OnnModel model =
      nn::make_proxy_cnn(1, 12, 4, nn::PtcBinding::fixed(topo), rng, 6);
  adept::data::DatasetSpec spec = adept::data::DatasetSpec::mnist_like();
  spec.height = spec.width = 12;
  spec.classes = 4;
  adept::data::SyntheticDataset train(spec, 32, 1);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 16;
  (void)nn::train_classifier(model, train, train, tc);
  return model;
}

nn::OnnModel make_lenet(std::uint64_t seed) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  Rng rng(seed);
  return nn::make_lenet5(1, 16, 4, nn::PtcBinding::fixed(topo), rng, 0.5);
}

rt::CompiledModel freeze(nn::OnnModel& model, std::vector<std::int64_t> dims,
                         bool optimize, bool quantize = false) {
  rt::FreezeOptions o;
  o.optimize = optimize;
  o.quantize_int8 = quantize;
  return rt::CompiledModel::freeze(model, std::move(dims), o);
}

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " element " << i;
  }
}

// ---- fp32 bit-exactness: optimized plan == reference chain ----------------

TEST(PlanFp32, OptimizedBitIdenticalMlp) {
  nn::OnnModel model = make_mlp(7);
  rt::CompiledModel ref = freeze(model, {17}, /*optimize=*/false);
  rt::CompiledModel opt = freeze(model, {17}, /*optimize=*/true);
  Rng rng(3);
  for (std::int64_t batch : {1, 2, 5, 16}) {
    const std::vector<float> x = random_input(batch * 17, rng);
    expect_bit_identical(ref.run(x, batch), opt.run(x, batch), "mlp");
  }
}

TEST(PlanFp32, OptimizedBitIdenticalProxyCnn) {
  nn::OnnModel model = make_trained_cnn(11);
  rt::CompiledModel ref = freeze(model, {1, 12, 12}, /*optimize=*/false);
  rt::CompiledModel opt = freeze(model, {1, 12, 12}, /*optimize=*/true);
  Rng rng(5);
  for (std::int64_t batch : {1, 3, 8}) {
    const std::vector<float> x = random_input(batch * 144, rng);
    expect_bit_identical(ref.run(x, batch), opt.run(x, batch), "proxy-cnn");
  }
}

TEST(PlanFp32, OptimizedBitIdenticalLenet) {
  nn::OnnModel model = make_lenet(13);
  rt::CompiledModel ref = freeze(model, {1, 16, 16}, /*optimize=*/false);
  rt::CompiledModel opt = freeze(model, {1, 16, 16}, /*optimize=*/true);
  Rng rng(2);
  for (std::int64_t batch : {1, 4, 9}) {
    const std::vector<float> x = random_input(batch * 256, rng);
    expect_bit_identical(ref.run(x, batch), opt.run(x, batch), "lenet");
  }
}

// ---- liveness: freed slots are really dead --------------------------------

// NaN-poison every slot that is not an operand of the step about to run. If
// the liveness analysis freed a slot some later step still reads, the NaN
// propagates and the comparison against the clean run fails.
TEST(PlanLiveness, PoisonedFreeSlotsNeverAlias) {
  nn::OnnModel model = make_trained_cnn(17);
  rt::CompiledModel opt = freeze(model, {1, 12, 12}, /*optimize=*/true);
  Rng rng(23);
  for (std::int64_t batch : {1, 6}) {
    const std::vector<float> x = random_input(batch * 144, rng);
    std::vector<float> clean(
        static_cast<std::size_t>(batch * opt.output_numel()));
    std::vector<float> poisoned(clean.size());
    rt::CompiledModel::Workspace ws;
    opt.run(x.data(), batch, clean.data(), ws);
    ws.poison_free_slots = true;
    opt.run(x.data(), batch, poisoned.data(), ws);
    for (std::size_t i = 0; i < clean.size(); ++i) {
      ASSERT_FALSE(std::isnan(poisoned[i])) << "freed-slot read at " << i;
      ASSERT_EQ(clean[i], poisoned[i]) << "element " << i;
    }
  }
}

// ---- workspace accounting -------------------------------------------------

TEST(PlanLiveness, PlannedWorkspaceIsSmaller) {
  nn::OnnModel model = make_trained_cnn(29);
  rt::CompiledModel ref = freeze(model, {1, 12, 12}, /*optimize=*/false);
  rt::CompiledModel opt = freeze(model, {1, 12, 12}, /*optimize=*/true);
  for (std::int64_t batch : {1, 16}) {
    EXPECT_LT(opt.workspace_bytes(batch), ref.workspace_bytes(batch))
        << "batch " << batch;
  }
  // The reported footprint scales with batch.
  EXPECT_GT(opt.workspace_bytes(16), opt.workspace_bytes(1));
}

TEST(PlanDump, ListsStepsSlotsAndFusions) {
  nn::OnnModel model = make_trained_cnn(31);
  rt::CompiledModel opt = freeze(model, {1, 12, 12}, /*optimize=*/true);
  std::ostringstream os;
  opt.dump_plan(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("conv"), std::string::npos) << text;
  EXPECT_NE(text.find("slot"), std::string::npos) << text;
  EXPECT_NE(text.find("bn"), std::string::npos) << text;  // fused epilogue

  rt::CompiledModel q =
      freeze(model, {1, 12, 12}, /*optimize=*/true, /*quantize=*/true);
  std::ostringstream qs;
  q.dump_plan(qs);
  EXPECT_NE(qs.str().find("int8"), std::string::npos) << qs.str();
}

// ---- int8: SIMD-level parity ----------------------------------------------

// The quantized plan must produce IDENTICAL bits at every dispatch level —
// integer accumulation has no rounding, and the quantization helpers
// (absmax / quantize_s8) are exact at every level by construction.
TEST(PlanInt8, BitIdenticalAcrossSimdLevels) {
  nn::OnnModel model = make_trained_cnn(37);
  rt::CompiledModel q =
      freeze(model, {1, 12, 12}, /*optimize=*/true, /*quantize=*/true);
  Rng rng(41);
  const std::int64_t batch = 5;
  const std::vector<float> x = random_input(batch * 144, rng);
  std::vector<float> ref;
  for (be::SimdLevel level : be::available_simd_levels()) {
    be::SimdScope scope(level);
    const std::vector<float> got = q.run(x, batch);
    if (ref.empty()) {
      ref = got;
      continue;
    }
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i])
          << "level " << be::simd_level_name(level) << " element " << i;
    }
  }
}

// Same parity promise at the kernel level, on awkward shapes (odd k so the
// s8 k-pair path hits its zero-padded tail, n not a multiple of the tile).
TEST(PlanInt8, KernelHelpersBitIdenticalAcrossLevels) {
  Rng rng(43);
  for (const std::size_t n : {1u, 7u, 31u, 32u, 33u, 100u, 257u}) {
    std::vector<float> x(n);
    for (auto& v : x) v = static_cast<float>(rng.uniform(-3.0, 3.0));
    float ref_max = -1.0f;
    std::vector<std::int8_t> ref_q;
    for (be::SimdLevel level : be::available_simd_levels()) {
      be::SimdScope scope(level);
      const float amax = be::absmax(n, x.data());
      std::vector<std::int8_t> q(n);
      be::quantize_s8(n, x.data(), amax > 0 ? 127.0f / amax : 0.0f, q.data());
      if (ref_max < 0) {
        ref_max = amax;
        ref_q = q;
        continue;
      }
      ASSERT_EQ(ref_max, amax) << be::simd_level_name(level) << " n=" << n;
      ASSERT_EQ(ref_q, q) << be::simd_level_name(level) << " n=" << n;
    }
  }

  for (const auto [m, n, k] :
       {std::array<std::int64_t, 3>{1, 1, 1},
        std::array<std::int64_t, 3>{3, 17, 25},
        std::array<std::int64_t, 3>{9, 16, 7},
        std::array<std::int64_t, 3>{13, 33, 75}}) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
    for (auto& v : a)
      v = static_cast<std::int8_t>(rng.uniform_int(0, 254) - 127);
    for (auto& v : b)
      v = static_cast<std::int8_t>(rng.uniform_int(0, 254) - 127);
    std::vector<std::int32_t> ref;
    for (be::SimdLevel level : be::available_simd_levels()) {
      be::SimdScope scope(level);
      const be::PackedGemmBS8 pb = be::pack_gemm_b_s8(k, n, b.data(), n);
      std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), -1);
      be::gemm_s8_packed(m, n, k, a.data(), k, b.data(), n, pb, c.data(), n);
      if (ref.empty()) {
        ref = c;
        continue;
      }
      ASSERT_EQ(ref, c) << be::simd_level_name(level) << " m=" << m
                        << " n=" << n << " k=" << k;
    }
  }
}

// ---- int8: batch-composition invariance -----------------------------------

// Activations are quantized per sample, so a sample's row must not depend
// on what else shares its micro-batch (the serving batcher mixes arbitrary
// requests).
TEST(PlanInt8, RowsIndependentOfBatchComposition) {
  nn::OnnModel model = make_trained_cnn(47);
  rt::CompiledModel q =
      freeze(model, {1, 12, 12}, /*optimize=*/true, /*quantize=*/true);
  Rng rng(53);
  const std::int64_t batch = 7;
  const std::vector<float> x = random_input(batch * 144, rng);
  const std::vector<float> together = q.run(x, batch);
  const std::size_t out = static_cast<std::size_t>(q.output_numel());
  for (std::int64_t i = 0; i < batch; ++i) {
    const std::vector<float> one(x.begin() + i * 144, x.begin() + (i + 1) * 144);
    const std::vector<float> alone = q.run(one, 1);
    for (std::size_t j = 0; j < out; ++j) {
      ASSERT_EQ(together[static_cast<std::size_t>(i) * out + j], alone[j])
          << "sample " << i << " element " << j;
    }
  }
}

// ---- int8: accuracy stays close to fp32 -----------------------------------

TEST(PlanInt8, OutputsCloseToFp32) {
  nn::OnnModel model = make_trained_cnn(59);
  rt::CompiledModel f = freeze(model, {1, 12, 12}, /*optimize=*/true);
  rt::CompiledModel q =
      freeze(model, {1, 12, 12}, /*optimize=*/true, /*quantize=*/true);
  Rng rng(61);
  const std::int64_t batch = 16;
  const std::vector<float> x = random_input(batch * 144, rng);
  const std::vector<float> a = f.run(x, batch);
  const std::vector<float> b = q.run(x, batch);
  ASSERT_EQ(a.size(), b.size());
  float scale = 1e-3f;
  for (const float v : a) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < a.size(); ++i) {
    // 8-bit weights and activations across two convs + fc: a few percent of
    // the logit range is the expected regime; 10% is a loose alarm bound.
    ASSERT_NEAR(a[i], b[i], 0.10f * scale) << "element " << i;
  }
}

// ---- refresh: no repack when parameters did not move -----------------------

TEST(PlanRefresh, SkipsWeightRepackWhenVersionUnchanged) {
  nn::OnnModel model = make_mlp(67);
  rt::CompiledModel cm = freeze(model, {17}, /*optimize=*/true);
  const std::uint64_t packs_after_freeze = rt::weight_pack_count();
  // No parameter mutation in between: refresh must be a no-op that packs
  // nothing (the redundant-repack regression).
  EXPECT_FALSE(cm.refresh(model));
  EXPECT_EQ(rt::weight_pack_count(), packs_after_freeze);

  adept::bump_param_version();
  EXPECT_TRUE(cm.refresh(model));
  EXPECT_GT(rt::weight_pack_count(), packs_after_freeze);
}

}  // namespace
