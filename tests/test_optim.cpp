#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "optim/optimizer.h"
#include "optim/schedule.h"

namespace {

namespace ag = adept::ag;
namespace optim = adept::optim;
using ag::Tensor;

// Quadratic bowl: loss = sum((x - target)^2)
double optimize_quadratic(optim::Optimizer& opt, Tensor& x, const Tensor& target,
                          int steps) {
  double final_loss = 0;
  for (int i = 0; i < steps; ++i) {
    Tensor loss = ag::sum(ag::square(ag::sub(x, target)));
    opt.zero_grad();
    loss.backward();
    opt.step();
    final_loss = loss.item();
  }
  return final_loss;
}

TEST(Sgd, ConvergesOnQuadratic) {
  Tensor x = Tensor::zeros({4}, true);
  Tensor target = Tensor::from_data({4}, {1, -2, 3, 0.5f});
  optim::Sgd opt({x}, 0.1);
  const double loss = optimize_quadratic(opt, x, target, 200);
  EXPECT_LT(loss, 1e-6);
  EXPECT_NEAR(x.data()[1], -2.0f, 1e-3);
}

TEST(Sgd, MomentumAcceleratesConvergence) {
  Tensor target = Tensor::from_data({4}, {1, -2, 3, 0.5f});
  Tensor x1 = Tensor::zeros({4}, true);
  optim::Sgd plain({x1}, 0.01);
  const double slow = optimize_quadratic(plain, x1, target, 50);
  Tensor x2 = Tensor::zeros({4}, true);
  optim::Sgd fast({x2}, 0.01, 0.9);
  const double quick = optimize_quadratic(fast, x2, target, 50);
  EXPECT_LT(quick, slow);
}

TEST(Sgd, WeightDecayShrinksParameters) {
  Tensor x = Tensor::full({2}, 1.0f, true);
  optim::Sgd opt({x}, 0.1, 0.0, /*weight_decay=*/0.5);
  for (int i = 0; i < 20; ++i) {
    Tensor loss = ag::sum(ag::mul_scalar(x, 0.0f));  // zero task gradient
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(std::fabs(x.data()[0]), 0.5f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Tensor x = Tensor::zeros({4}, true);
  Tensor target = Tensor::from_data({4}, {1, -2, 3, 0.5f});
  optim::Adam opt({x}, 0.05);
  const double loss = optimize_quadratic(opt, x, target, 400);
  EXPECT_LT(loss, 1e-4);
}

TEST(Adam, HandlesIllConditionedScales) {
  // One coordinate's gradient is 100x the other; Adam normalizes per-coord.
  Tensor x = Tensor::zeros({2}, true);
  optim::Adam opt({x}, 0.05);
  for (int i = 0; i < 500; ++i) {
    Tensor scale = Tensor::from_data({2}, {100.0f, 1.0f});
    Tensor target = Tensor::from_data({2}, {1.0f, 1.0f});
    Tensor loss = ag::sum(ag::mul(scale, ag::square(ag::sub(x, target))));
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(x.data()[0], 1.0f, 0.05);
  EXPECT_NEAR(x.data()[1], 1.0f, 0.05);
}

TEST(Optimizer, SkipsParamsWithoutGrad) {
  Tensor x = Tensor::full({2}, 3.0f, true);
  optim::Adam opt({x}, 1.0);
  opt.step();  // no backward ran; data must be untouched
  EXPECT_FLOAT_EQ(x.data()[0], 3.0f);
}

TEST(Optimizer, LrAccessors) {
  Tensor x = Tensor::zeros({1}, true);
  optim::Sgd opt({x}, 0.5);
  EXPECT_DOUBLE_EQ(opt.lr(), 0.5);
  opt.set_lr(0.25);
  EXPECT_DOUBLE_EQ(opt.lr(), 0.25);
}

TEST(CosineLr, EndpointsAndMonotoneDecay) {
  optim::CosineLr schedule(1.0, 100, 0.1);
  EXPECT_NEAR(schedule.at(0), 1.0, 1e-9);
  EXPECT_NEAR(schedule.at(100), 0.1, 1e-9);
  EXPECT_NEAR(schedule.at(50), 0.55, 1e-9);
  for (int t = 1; t <= 100; ++t) EXPECT_LE(schedule.at(t), schedule.at(t - 1) + 1e-12);
  // Clamps beyond the horizon.
  EXPECT_NEAR(schedule.at(150), 0.1, 1e-9);
}

TEST(ExponentialDecay, PaperTemperatureSchedule) {
  // tau: 5 -> 0.5 exponentially (paper Sec. 4.1).
  optim::ExponentialDecay schedule(5.0, 0.5, 90);
  EXPECT_NEAR(schedule.at(0), 5.0, 1e-9);
  EXPECT_NEAR(schedule.at(90), 0.5, 1e-9);
  EXPECT_NEAR(schedule.at(45), std::sqrt(5.0 * 0.5), 1e-6);  // geometric midpoint
}

}  // namespace
