// src/comm collective layer: correctness of the collectives against the
// documented fixed reduction tree, shutdown behavior under failure, and the
// headline guarantee — N-rank search/training results are ASSERT_EQ
// bit-identical to 1-rank at any kernel thread count.
//
// Suites: Comm* are cheap and thread-heavy (they run under the TSan CI leg);
// RankParity* are the heavier end-to-end parity checks (Release legs only).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/parallel.h"
#include "comm/communicator.h"
#include "comm/sharded.h"
#include "common/failpoint.h"
#include "core/search.h"
#include "data/synthetic.h"
#include "nn/train.h"
#include "photonics/builders.h"

namespace {

namespace be = adept::backend;
namespace comm = adept::comm;
namespace core = adept::core;
namespace data = adept::data;
namespace nn = adept::nn;
namespace ph = adept::photonics;
using adept::Rng;

// Deterministic per-rank input for the collective tests.
float rank_value(int rank, std::int64_t i) {
  return 1.0f / static_cast<float>(rank + 1) +
         0.125f * static_cast<float>((i * (rank + 3)) % 11);
}

// ---- Comm: collectives ----------------------------------------------------

TEST(Comm, AllreduceMatchesFixedTreeReference) {
  // 4097 floats: crosses a chunk boundary with a ragged tail, so chunk
  // ownership and per-element order both get exercised.
  const std::int64_t n = 4097;
  const int world = 4;
  std::vector<std::vector<float>> got(world);
  comm::run_ranks(world, [&](comm::Communicator& c) {
    std::vector<float> v(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      v[static_cast<std::size_t>(i)] = rank_value(c.rank(), i);
    }
    c.allreduce_sum(v.data(), n);
    got[static_cast<std::size_t>(c.rank())] = std::move(v);
  });
  for (std::int64_t i = 0; i < n; ++i) {
    // Documented order: ((r0 + r1) + (r2 + r3)), no other association.
    const float expect = (rank_value(0, i) + rank_value(1, i)) +
                         (rank_value(2, i) + rank_value(3, i));
    for (int r = 0; r < world; ++r) {
      ASSERT_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                expect)
          << "rank " << r << " elem " << i;
    }
  }
}

TEST(Comm, AllreduceDoubleAndDegenerateSizes) {
  comm::run_ranks(2, [&](comm::Communicator& c) {
    std::vector<double> v = {1.5 + c.rank(), -2.25, 0.5 * c.rank()};
    c.allreduce_sum(v.data(), 3);
    EXPECT_EQ(v[0], 1.5 + 2.5);
    EXPECT_EQ(v[1], -4.5);
    EXPECT_EQ(v[2], 0.5);
    // n = 0 and n = 1 must not crash or hang.
    c.allreduce_sum(v.data(), 0);
    float one = static_cast<float>(c.rank() + 1);
    c.allreduce_sum(&one, 1);
    EXPECT_EQ(one, 3.0f);
  });
}

TEST(Comm, AllreduceBitsIndependentOfThreadCount) {
  const std::int64_t n = 10000;  // non-divisible by the chunk size
  auto run_at = [&](int threads) {
    be::ThreadScope scope(threads);
    std::vector<float> out;
    comm::run_ranks(4, [&](comm::Communicator& c) {
      std::vector<float> v(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        v[static_cast<std::size_t>(i)] = rank_value(c.rank(), i);
      }
      c.allreduce_sum(v.data(), n);
      if (c.rank() == 0) out = std::move(v);
    });
    return out;
  };
  const auto t1 = run_at(1);
  const auto t3 = run_at(3);
  const auto t8 = run_at(8);
  ASSERT_EQ(t1.size(), t3.size());
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    ASSERT_EQ(t1[i], t3[i]);
    ASSERT_EQ(t1[i], t8[i]);
  }
}

TEST(Comm, BroadcastReplicatesRoot) {
  comm::run_ranks(4, [&](comm::Communicator& c) {
    std::vector<float> v(257, static_cast<float>(c.rank()));
    c.broadcast(v.data(), static_cast<std::int64_t>(v.size()), /*root=*/2);
    for (float x : v) ASSERT_EQ(x, 2.0f);
    std::vector<double> d(3, static_cast<double>(c.rank()) + 0.25);
    c.broadcast(d.data(), 3, /*root=*/0);
    for (double x : d) ASSERT_EQ(x, 0.25);
  });
}

TEST(Comm, AllgatherIsRankMajor) {
  const std::int64_t n = 5;
  comm::run_ranks(4, [&](comm::Communicator& c) {
    std::vector<float> in(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      in[static_cast<std::size_t>(i)] = rank_value(c.rank(), i);
    }
    std::vector<float> out(static_cast<std::size_t>(4 * n), -1.0f);
    c.allgather(in.data(), n, out.data());
    for (int r = 0; r < 4; ++r) {
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[static_cast<std::size_t>(r * n + i)], rank_value(r, i));
      }
    }
    c.barrier();
  });
}

TEST(Comm, ResolveRanksClampingSemantics) {
  // Explicit requests: clamp to [1, kMaxWorld], then round down to pow2
  // (explicit counts may oversubscribe small machines — ranks timeslice).
  EXPECT_EQ(comm::resolve_ranks(1), 1);
  EXPECT_EQ(comm::resolve_ranks(2), 2);
  EXPECT_EQ(comm::resolve_ranks(3), 2);
  EXPECT_EQ(comm::resolve_ranks(5), 4);
  EXPECT_EQ(comm::resolve_ranks(8), 8);
  EXPECT_EQ(comm::resolve_ranks(64), 8);

  // Env-driven requests clamp to the hardware envelope.
  const int hw_max = comm::max_world_size();
  EXPECT_GE(hw_max, 1);
  EXPECT_LE(hw_max, comm::kMaxWorld);
  ASSERT_EQ(setenv("ADEPT_RANKS", "64", 1), 0);
  int r = comm::resolve_ranks();
  EXPECT_LE(r, hw_max);
  EXPECT_GE(r, 1);
  EXPECT_EQ(r & (r - 1), 0);  // power of two
  // Unknown / non-positive values fall back to 1, never error.
  ASSERT_EQ(setenv("ADEPT_RANKS", "banana", 1), 0);
  EXPECT_EQ(comm::resolve_ranks(), 1);
  ASSERT_EQ(setenv("ADEPT_RANKS", "-3", 1), 0);
  EXPECT_EQ(comm::resolve_ranks(), 1);
  ASSERT_EQ(unsetenv("ADEPT_RANKS"), 0);
  EXPECT_EQ(comm::resolve_ranks(), 1);
}

TEST(Comm, RunRanksRejectsBadWorld) {
  EXPECT_THROW(comm::run_ranks(0, [](comm::Communicator&) {}),
               std::invalid_argument);
  EXPECT_THROW(comm::run_ranks(comm::kMaxWorld + 1, [](comm::Communicator&) {}),
               std::invalid_argument);
}

TEST(Comm, AllreduceFailpointAbortsWorldWithoutDeadlock) {
  const std::uint64_t hits_before = adept::failpoint::hit_count("comm.allreduce");
  adept::failpoint::Scoped fp("comm.allreduce", "1*throw");
  // One rank dies entering the collective; its peers are blocked in the
  // publish barrier and must unblock via the poisoned barrier instead of
  // deadlocking. run_ranks then surfaces the injected root cause, not the
  // AbortedError cascade.
  EXPECT_THROW(
      comm::run_ranks(4,
                      [&](comm::Communicator& c) {
                        std::vector<float> v(1000, static_cast<float>(c.rank()));
                        c.allreduce_sum(v.data(),
                                        static_cast<std::int64_t>(v.size()));
                      }),
      adept::failpoint::Injected);
  EXPECT_GT(adept::failpoint::hit_count("comm.allreduce"), hits_before);
  // The aborted world leaves no residue: a fresh world works.
  comm::run_ranks(2, [](comm::Communicator& c) { c.barrier(); });
}

TEST(Comm, RunRanksRethrowsRootCauseOverAbortCascade) {
  EXPECT_THROW(comm::run_ranks(4,
                               [](comm::Communicator& c) {
                                 if (c.rank() == 2) {
                                   throw std::logic_error("rank 2 boom");
                                 }
                                 c.barrier();
                               }),
               std::logic_error);
}

// ---- Comm: micro-shard reducer -------------------------------------------

TEST(Comm, ShardHelpersAreSizeOnlyAndAligned) {
  EXPECT_EQ(comm::shard_count(0), 0);
  EXPECT_EQ(comm::shard_count(1), 1);
  EXPECT_EQ(comm::shard_count(5), 4);
  EXPECT_EQ(comm::shard_count(8), 8);
  EXPECT_EQ(comm::shard_count(1000), comm::kMaxShards);
  // Ranges cover [0, items) contiguously.
  const std::int64_t items = 13;
  const int shards = comm::shard_count(items);
  std::int64_t cursor = 0;
  for (int s = 0; s < shards; ++s) {
    const auto r = comm::shard_range(items, s, shards);
    EXPECT_EQ(r.lo, cursor);
    EXPECT_LE(r.lo, r.hi);
    cursor = r.hi;
  }
  EXPECT_EQ(cursor, items);
  // Owners form contiguous subtree-aligned blocks.
  for (int world : {1, 2, 4, 8}) {
    int prev = 0;
    for (int s = 0; s < 8; ++s) {
      const int o = comm::shard_owner(s, 8, world);
      EXPECT_GE(o, prev);
      EXPECT_LT(o, world);
      prev = o;
    }
  }
}

TEST(Comm, ReducerGradientsBitIdenticalAcrossWorldSizes) {
  // Per-shard "gradients" are a fixed function of the shard index; the
  // reduced result must be bit-identical for every world size, because the
  // combine order is the same fixed tree regardless of who owns what.
  const std::int64_t items = 11;
  const int shards = comm::shard_count(items);  // 8
  const std::size_t n = 300;
  auto shard_grad = [&](int s, std::size_t i) {
    return std::sin(0.37f * static_cast<float>((s + 1) * (i % 17 + 1)));
  };
  std::map<int, std::vector<float>> grads;
  std::map<int, double> scalars;
  for (int world : {1, 2, 4, 8}) {
    comm::run_ranks(world, [&](comm::Communicator& c) {
      auto p = adept::ag::make_tensor(std::vector<float>(n, 0.0f),
                                      {static_cast<std::int64_t>(n)}, true);
      comm::ShardedGradReducer reducer({p}, /*scalar_slots=*/1);
      for (int s = 0; s < shards; ++s) {
        if (comm::shard_owner(s, shards, c.world_size()) != c.rank()) continue;
        p.zero_grad();
        auto& g = p.grad();
        for (std::size_t i = 0; i < n; ++i) g[i] = shard_grad(s, i);
        reducer.add_shard({static_cast<double>(s)});
      }
      const auto sc = reducer.finish(c);
      if (c.rank() == 0) {
        grads[world] = p.grad();
        scalars[world] = sc.at(0);
      }
    });
  }
  for (int world : {2, 4, 8}) {
    ASSERT_EQ(grads.at(world).size(), grads.at(1).size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(grads.at(world)[i], grads.at(1)[i])
          << "world " << world << " elem " << i;
    }
    ASSERT_EQ(scalars.at(world), scalars.at(1));
  }
  EXPECT_EQ(scalars.at(1), 0.0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

// ---- RankParity: end-to-end bit-exactness --------------------------------

core::SearchConfig parity_search_config() {
  core::SearchConfig config;
  config.mesh.k = 4;
  config.mesh.super_blocks_per_unitary = 3;
  config.mesh.always_on_per_unitary = 1;
  config.footprint.pdk = ph::Pdk::amf();
  config.footprint.f_min = 40;
  config.footprint.f_max = 240;
  config.epochs = 4;
  config.warmup_epochs = 1;
  config.spl_epoch = 2;
  config.steps_per_epoch = 8;
  config.alm.rho0 = 1e-4;
  config.seed = 21;
  return config;
}

void assert_traces_equal(const core::SearchTrace& a, const core::SearchTrace& b) {
  ASSERT_EQ(a.task_loss.size(), b.task_loss.size());
  for (std::size_t i = 0; i < a.task_loss.size(); ++i) {
    ASSERT_EQ(a.task_loss[i], b.task_loss[i]) << "task_loss step " << i;
    ASSERT_EQ(a.footprint_penalty[i], b.footprint_penalty[i]) << "step " << i;
    ASSERT_EQ(a.expected_footprint[i], b.expected_footprint[i]) << "step " << i;
    ASSERT_EQ(a.alm_lambda[i], b.alm_lambda[i]) << "step " << i;
    ASSERT_EQ(a.permutation_error[i], b.permutation_error[i]) << "step " << i;
  }
}

TEST(RankParity, MatrixFitSearchBitIdenticalAcrossRanks) {
  const auto config = parity_search_config();
  // 5 tiles -> 4 micro-shards with a ragged tail (the last shard holds 2).
  auto make_task = [] {
    return std::make_unique<core::MatrixFitTask>(/*tiles=*/5, /*seed=*/5);
  };
  auto run_at = [&](int ranks) {
    return core::run_search_data_parallel(config, make_task, ranks);
  };
  const auto r1 = run_at(1);
  const auto r2 = run_at(2);
  const auto r4 = run_at(4);
  assert_traces_equal(r1.trace, r2.trace);
  assert_traces_equal(r1.trace, r4.trace);
  ASSERT_EQ(r1.final_metric, r2.final_metric);
  ASSERT_EQ(r1.final_metric, r4.final_metric);
  ASSERT_EQ(r1.topology.footprint_um2(config.footprint.pdk),
            r4.topology.footprint_um2(config.footprint.pdk));
  // And the whole family is thread-count independent.
  {
    be::ThreadScope scope(2);
    const auto r4t2 = run_at(4);
    assert_traces_equal(r1.trace, r4t2.trace);
    ASSERT_EQ(r1.final_metric, r4t2.final_metric);
  }
}

TEST(RankParity, OnnProxySearchBitIdenticalAcrossRanks) {
  // The CNN proxy adds the hard part: BatchNorm running stats, which go
  // through the capture/gather/replay protocol instead of per-forward EMA.
  auto spec = data::DatasetSpec::mnist_like();
  spec.height = 14;
  spec.width = 14;
  data::SyntheticDataset train(spec, 48, 1);
  data::SyntheticDataset val(spec, 32, 2);
  auto config = parity_search_config();
  config.epochs = 2;
  config.steps_per_epoch = 6;
  config.spl_epoch = 1;
  auto make_task = [&] {
    return std::make_unique<nn::OnnProxyTask>(train, val, /*batch=*/12,
                                              /*width=*/4, /*seed=*/10);
  };
  const auto r1 = core::run_search_data_parallel(config, make_task, 1);
  const auto r4 = core::run_search_data_parallel(config, make_task, 4);
  assert_traces_equal(r1.trace, r4.trace);
  ASSERT_EQ(r1.final_metric, r4.final_metric);
}

nn::OnnModel parity_model(std::uint64_t seed) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  Rng rng(seed);
  return nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::fixed(topo), rng, 4);
}

TEST(RankParity, TrainClassifierBitIdenticalAcrossRanks) {
  auto spec = data::DatasetSpec::mnist_like();
  spec.height = 14;
  spec.width = 14;
  // 50 samples at batch 24: the last batch holds 2 samples, so shard counts
  // vary per step (8, 8, 2) — the awkward case the size-only shard math must
  // absorb. Phase noise on: the per-(step, shard) noise re-arm is covered.
  data::SyntheticDataset train(spec, 50, 4);
  data::SyntheticDataset test(spec, 32, 5);
  nn::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 24;
  config.seed = 7;
  config.train_phase_noise = 0.02;
  config.data_parallel = true;  // world 1 still runs the sharded numerics

  auto run_at = [&](int ranks, int threads) {
    be::ThreadScope scope(threads);
    auto model = parity_model(31);
    auto cfg = config;
    cfg.ranks = ranks;
    const auto stats = nn::train_classifier(model, train, test, cfg);
    return std::make_pair(model.parameters(), stats);
  };
  auto [p1, s1] = run_at(1, 1);
  auto [p4, s4] = run_at(4, 1);
  auto [p4t4, s4t4] = run_at(4, 4);
  auto [p2t2, s2t2] = run_at(2, 2);
  ASSERT_EQ(p1.size(), p4.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    const auto& a = p1[i].data();
    const auto& b = p4[i].data();
    const auto& c = p4t4[i].data();
    const auto& d = p2t2[i].data();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j], b[j]) << "param " << i << " elem " << j << " (r1 vs r4)";
      ASSERT_EQ(a[j], c[j]) << "param " << i << " elem " << j << " (threads)";
      ASSERT_EQ(a[j], d[j]) << "param " << i << " elem " << j << " (r2)";
    }
  }
  ASSERT_EQ(s1.final_accuracy, s4.final_accuracy);
  ASSERT_EQ(s1.final_accuracy, s4t4.final_accuracy);
  ASSERT_EQ(s1.final_accuracy, s2t2.final_accuracy);
  ASSERT_EQ(s1.train_loss_per_epoch, s4.train_loss_per_epoch);
}

TEST(RankParity, RankedTrainingStillLearns) {
  // De-risks the CI leg that reruns the Train suite under ADEPT_RANKS=4: the
  // sharded numerics (ghost batch norm over micro-shards, tree-summed
  // gradients) must still clear the same learning bar as the legacy loop.
  auto spec = data::DatasetSpec::mnist_like();
  spec.height = 14;
  spec.width = 14;
  data::SyntheticDataset train(spec, 256, 1);
  data::SyntheticDataset test(spec, 128, 2);
  Rng rng(1);
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::dense(), rng, 4);
  nn::TrainConfig config;
  config.epochs = 4;
  config.batch_size = 32;
  config.lr = 3e-3;
  config.ranks = 4;
  const auto stats = nn::train_classifier(model, train, test, config);
  EXPECT_EQ(stats.train_loss_per_epoch.size(), 4u);
  EXPECT_GT(stats.final_accuracy, 0.3);  // 10-class chance is 0.1
  EXPECT_LT(stats.train_loss_per_epoch.back(), stats.train_loss_per_epoch.front());
}

TEST(RankParity, RankedTrainingRejectsUncheckpointableModels) {
  // Supermesh-bound layers cannot be replicated across ranks; the error must
  // say so instead of crashing a rank thread.
  auto spec = data::DatasetSpec::mnist_like();
  spec.height = 14;
  spec.width = 14;
  data::SyntheticDataset train(spec, 32, 8);
  data::SyntheticDataset test(spec, 16, 9);
  core::SuperMeshConfig mesh_config;
  mesh_config.k = 4;
  mesh_config.super_blocks_per_unitary = 2;
  mesh_config.always_on_per_unitary = 1;
  Rng rng(5);
  core::SuperMesh mesh(mesh_config, rng);
  Rng mrng(6);
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::searched(&mesh),
                                  mrng, 4);
  nn::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  config.ranks = 2;
  EXPECT_THROW(nn::train_classifier(model, train, test, config),
               std::runtime_error);
}

}  // namespace
