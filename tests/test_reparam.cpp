#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "common/rng.h"
#include "core/reparam.h"

namespace {

namespace ag = adept::ag;
namespace core = adept::core;
using adept::Rng;
using ag::Tensor;

TEST(Reparam, SmoothedIdentityIsDoublyStochastic) {
  for (int k : {4, 8, 16}) {
    Tensor p = core::smoothed_identity_init(k, false);
    for (int i = 0; i < k; ++i) {
      double row = 0, col = 0;
      for (int j = 0; j < k; ++j) {
        row += p.at(i, j);
        col += p.at(j, i);
        EXPECT_GT(p.at(i, j), 0.0f);
      }
      EXPECT_NEAR(row, 1.0, 1e-5);
      EXPECT_NEAR(col, 1.0, 1e-5);
    }
    // Diagonal dominates (paper: diagonal = 1/2).
    EXPECT_NEAR(p.at(0, 0), 0.5f, 1e-5);
  }
}

TEST(Reparam, BirkhoffRowsSumToOne) {
  Rng rng(1);
  std::vector<float> raw(36);
  for (auto& v : raw) v = static_cast<float>(rng.uniform(-2, 2));
  Tensor p = ag::make_tensor(std::move(raw), {6, 6}, false);
  Tensor b = core::birkhoff_reparam(p);
  for (int i = 0; i < 6; ++i) {
    double row = 0;
    for (int j = 0; j < 6; ++j) {
      EXPECT_GE(b.at(i, j), 0.0f);
      row += b.at(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-4);
  }
}

TEST(Reparam, SoftProjectionRoundsConfidentRows) {
  // Row 0 is one-hot-ish (max 0.96 >= 1 - 0.05), row 1 is ambiguous.
  Tensor p = Tensor::from_data({2, 2}, {0.96f, 0.04f, 0.6f, 0.4f}, true);
  Tensor out = core::soft_permutation_project(p, 0.05f);
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.6f);  // untouched
}

TEST(Reparam, SoftProjectionStopsGradientOnRoundedRows) {
  Tensor p = Tensor::from_data({2, 2}, {0.96f, 0.04f, 0.6f, 0.4f}, true);
  Tensor out = core::soft_permutation_project(p, 0.05f);
  ag::sum(ag::square(out)).backward();
  // Rounded row: zero grads; soft row: nonzero.
  EXPECT_FLOAT_EQ(p.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(p.grad()[1], 0.0f);
  EXPECT_NE(p.grad()[2], 0.0f);
}

TEST(Reparam, FullChainGradcheckOnSoftRows) {
  // Away from the projection threshold the chain must be differentiable.
  Rng rng(2);
  std::vector<float> raw(16);
  for (auto& v : raw) v = static_cast<float>(rng.uniform(0.3, 1.0));
  Tensor p = ag::make_tensor(std::move(raw), {4, 4}, true);
  auto fn = [](const std::vector<Tensor>& in) {
    return ag::sum(ag::square(core::reparametrize_permutation(in[0], 0.05f)));
  };
  const auto result = ag::gradcheck(fn, {p}, 1e-3, 1e-2, 8e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Reparam, PermutationInputIsFixedPoint) {
  // An exact permutation passes through unchanged (rounded rows).
  Tensor p = Tensor::from_data({3, 3}, {0, 1, 0, 1, 0, 0, 0, 0, 1}, true);
  Tensor out = core::reparametrize_permutation(p, 0.05f);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(out.at(i, j), p.at(i, j), 1e-5);
    }
  }
}

TEST(Reparam, NegativeEntriesHandledByAbs) {
  Tensor p = Tensor::from_data({2, 2}, {-0.9f, 0.1f, 0.1f, -0.9f}, false);
  Tensor out = core::birkhoff_reparam(p);
  EXPECT_GT(out.at(0, 0), 0.5f);
  EXPECT_GT(out.at(1, 1), 0.5f);
}

}  // namespace
