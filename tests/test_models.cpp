#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/models.h"
#include "photonics/builders.h"

namespace {

namespace ag = adept::ag;
namespace nn = adept::nn;
namespace ph = adept::photonics;
using adept::Rng;
using ag::Tensor;

Tensor random_images(int n, int c, int hw, Rng& rng) {
  std::vector<float> data(static_cast<std::size_t>(n * c * hw * hw));
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1, 1));
  return ag::make_tensor(std::move(data), {n, c, hw, hw}, false);
}

TEST(Models, ProxyCnnOutputShape) {
  Rng rng(1);
  auto model = nn::make_proxy_cnn(1, 28, 10, nn::PtcBinding::dense(), rng, 8);
  Tensor y = model.net->forward(random_images(2, 1, 28, rng));
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 10);
  EXPECT_EQ(model.onn_layers.size(), 3u);  // 2 conv + 1 fc
  EXPECT_FALSE(model.parameters().empty());
}

TEST(Models, ProxyCnnWithPtcBinding) {
  Rng rng(2);
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::fixed(topo), rng, 4);
  Tensor y = model.net->forward(random_images(2, 1, 14, rng));
  EXPECT_EQ(y.dim(1), 10);
}

TEST(Models, LeNet5ShapesFor28And32) {
  Rng rng(3);
  auto m28 = nn::make_lenet5(1, 28, 10, nn::PtcBinding::dense(), rng);
  EXPECT_EQ(m28.net->forward(random_images(2, 1, 28, rng)).dim(1), 10);
  auto m32 = nn::make_lenet5(3, 32, 10, nn::PtcBinding::dense(), rng);
  EXPECT_EQ(m32.net->forward(random_images(2, 3, 32, rng)).dim(1), 10);
  EXPECT_EQ(m32.onn_layers.size(), 5u);  // 2 conv + 3 fc
}

TEST(Models, LeNet5WidthScale) {
  Rng rng(4);
  auto full = nn::make_lenet5(1, 28, 10, nn::PtcBinding::dense(), rng, 1.0);
  auto slim = nn::make_lenet5(1, 28, 10, nn::PtcBinding::dense(), rng, 0.5);
  auto count = [](nn::OnnModel& m) {
    std::size_t n = 0;
    for (auto& p : m.parameters()) n += p.data().size();
    return n;
  };
  EXPECT_GT(count(full), count(slim));
}

TEST(Models, Vgg8Shapes) {
  Rng rng(5);
  auto model = nn::make_vgg8(3, 32, 10, nn::PtcBinding::dense(), rng, 0.125);
  Tensor y = model.net->forward(random_images(2, 3, 32, rng));
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 10);
  EXPECT_EQ(model.onn_layers.size(), 8u);  // 6 conv + 2 fc = "VGG-8"
}

TEST(Models, PhaseNoisePropagatesToAllLayers) {
  Rng rng(6);
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::fixed(topo), rng, 4);
  Tensor x = random_images(1, 1, 14, rng);
  ag::NoGradGuard guard;
  model.set_training(false);
  Tensor nominal = model.net->forward(x);
  model.set_phase_noise(0.08, 42);
  Tensor noisy = model.net->forward(x);
  double diff = 0;
  for (std::size_t i = 0; i < nominal.data().size(); ++i) {
    diff += std::fabs(nominal.data()[i] - noisy.data()[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(Models, TrainingFlagReachesBatchNorm) {
  Rng rng(7);
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::dense(), rng, 4);
  model.set_training(false);
  for (const auto& m : model.net->modules()) EXPECT_FALSE(m->training());
}

}  // namespace
