#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "autograd/complex.h"
#include "autograd/gradcheck.h"
#include "common/rng.h"
#include "photonics/devices.h"
#include "photonics/linalg.h"

namespace {

namespace ag = adept::ag;
namespace ph = adept::photonics;
using adept::Rng;
using ag::CxTensor;
using ag::Tensor;

CxTensor random_cx(std::int64_t r, std::int64_t c, Rng& rng, bool rg = true) {
  auto mk = [&]() {
    std::vector<float> d(static_cast<std::size_t>(r * c));
    for (auto& v : d) v = static_cast<float>(rng.uniform(-1, 1));
    return ag::make_tensor(std::move(d), {r, c}, rg);
  };
  return {mk(), mk()};
}

ph::CMat to_cmat(const CxTensor& t) {
  const std::int64_t r = t.dim(0), c = t.dim(1);
  ph::CMat m(r, c);
  for (std::int64_t i = 0; i < r; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      m.at(i, j) = ph::cplx(t.re.at(i, j), t.im.at(i, j));
    }
  }
  return m;
}

TEST(Complex, CmatmulMatchesReference) {
  Rng rng(1);
  CxTensor a = random_cx(3, 4, rng, false);
  CxTensor b = random_cx(4, 2, rng, false);
  CxTensor c = ag::cmatmul(a, b);
  ph::CMat ref = to_cmat(a) * to_cmat(b);
  EXPECT_LT(ref.max_abs_diff(to_cmat(c)), 1e-5);
}

TEST(Complex, CmulMatchesScalarComplex) {
  Rng rng(2);
  CxTensor a = random_cx(2, 2, rng, false);
  CxTensor b = random_cx(2, 2, rng, false);
  CxTensor c = ag::cmul(a, b);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const std::complex<float> za(a.re.at(i, j), a.im.at(i, j));
      const std::complex<float> zb(b.re.at(i, j), b.im.at(i, j));
      const auto zc = za * zb;
      EXPECT_NEAR(c.re.at(i, j), zc.real(), 1e-5);
      EXPECT_NEAR(c.im.at(i, j), zc.imag(), 1e-5);
    }
  }
}

TEST(Complex, ExpNegIUnitMagnitude) {
  Tensor phi = Tensor::from_data({4}, {0.0f, 1.0f, -2.0f, 3.14159265f});
  CxTensor e = ag::cexp_neg_i(phi);
  for (int i = 0; i < 4; ++i) {
    const float mag = e.re.data()[static_cast<std::size_t>(i)] * e.re.data()[static_cast<std::size_t>(i)] +
                      e.im.data()[static_cast<std::size_t>(i)] * e.im.data()[static_cast<std::size_t>(i)];
    EXPECT_NEAR(mag, 1.0f, 1e-5);
  }
  EXPECT_NEAR(e.re.data()[0], 1.0f, 1e-6);
  EXPECT_NEAR(e.im.data()[0], 0.0f, 1e-6);
  EXPECT_NEAR(e.im.data()[1], -std::sin(1.0f), 1e-5);  // exp(-i*phi)
}

TEST(Complex, PhaseColumnMatchesDeviceModel) {
  Tensor phi = Tensor::from_data({3}, {0.3f, -0.7f, 2.1f});
  CxTensor r = ag::phase_column(phi);
  const ph::CMat ref = ph::phase_column_matrix({0.3, -0.7, 2.1});
  EXPECT_LT(ref.max_abs_diff(to_cmat(r)), 1e-5);
}

TEST(Complex, CouplerColumnMatchesDeviceModel) {
  // 2 slots at parity 0 on K=4, t = (0.8, 0.6)
  Tensor t = Tensor::from_data({2}, {0.8f, 0.6f});
  CxTensor m = ag::coupler_column(t, 4, 0);
  const ph::CMat ref =
      ph::coupler_column_matrix(4, 0, {true, true}, {0.8, 0.6});
  EXPECT_LT(ref.max_abs_diff(to_cmat(m)), 1e-5);
}

TEST(Complex, CouplerColumnParityOnePassThrough) {
  Tensor t = Tensor::from_data({1}, {0.5f});
  CxTensor m = ag::coupler_column(t, 4, 1);
  // rows 0 and 3 are pass-through
  EXPECT_FLOAT_EQ(m.re.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.re.at(3, 3), 1.0f);
  EXPECT_FLOAT_EQ(m.im.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m.re.at(1, 1), 0.5f);
}

TEST(Complex, CouplerColumnIsUnitary) {
  Tensor t = Tensor::from_data({3}, {0.7071f, 0.3f, 0.95f});
  CxTensor m = ag::coupler_column(t, 6, 0);
  EXPECT_LT(to_cmat(m).unitarity_error(), 1e-5);
}

TEST(Complex, CouplerColumnGradcheck) {
  Rng rng(3);
  std::vector<float> tv = {0.3f, 0.8f};
  Tensor t = ag::make_tensor(std::move(tv), {2}, true);
  auto fn = [](const std::vector<Tensor>& in) {
    CxTensor m = ag::coupler_column(in[0], 4, 0);
    return ag::add(ag::sum(ag::square(m.re)), ag::sum(ag::square(m.im)));
  };
  const auto result = ag::gradcheck(fn, {t});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Complex, PhaseChainGradcheck) {
  // Gradient flows through exp(-i phi) into a complex matmul chain.
  Rng rng(4);
  std::vector<float> pv(4);
  for (auto& p : pv) p = static_cast<float>(rng.uniform(-3, 3));
  Tensor phi = ag::make_tensor(std::move(pv), {4}, true);
  CxTensor fixed = random_cx(4, 4, rng, false);
  auto fn = [&fixed](const std::vector<Tensor>& in) {
    CxTensor r = ag::phase_column(in[0]);
    CxTensor prod = ag::cmatmul(fixed, r);
    return ag::add(ag::sum(ag::square(prod.re)), ag::sum(ag::square(prod.im)));
  };
  EXPECT_TRUE(ag::gradcheck(fn, {phi}).ok);
}

TEST(Complex, AdjointConjugateTranspose) {
  Rng rng(5);
  CxTensor a = random_cx(2, 3, rng, false);
  CxTensor at = ag::adjoint(a);
  EXPECT_EQ(at.dim(0), 3);
  EXPECT_FLOAT_EQ(at.re.at(2, 1), a.re.at(1, 2));
  EXPECT_FLOAT_EQ(at.im.at(2, 1), -a.im.at(1, 2));
}

TEST(Complex, RowNormalizeUnitRows) {
  Rng rng(6);
  CxTensor a = random_cx(4, 4, rng, false);
  CxTensor n = ag::row_normalize(a);
  for (int i = 0; i < 4; ++i) {
    double norm = 0;
    for (int j = 0; j < 4; ++j) {
      norm += static_cast<double>(n.re.at(i, j)) * n.re.at(i, j) +
              static_cast<double>(n.im.at(i, j)) * n.im.at(i, j);
    }
    EXPECT_NEAR(norm, 1.0, 1e-4);
  }
}

TEST(Complex, ColNormalizeUnitCols) {
  Rng rng(7);
  CxTensor a = random_cx(4, 4, rng, false);
  CxTensor n = ag::col_normalize(a);
  for (int j = 0; j < 4; ++j) {
    double norm = 0;
    for (int i = 0; i < 4; ++i) {
      norm += static_cast<double>(n.re.at(i, j)) * n.re.at(i, j) +
              static_cast<double>(n.im.at(i, j)) * n.im.at(i, j);
    }
    EXPECT_NEAR(norm, 1.0, 1e-4);
  }
}

// ---- fused cmatmul / block transfer ---------------------------------------

TEST(ComplexFused, CmatmulMatchesUnfusedForwardAndGrads) {
  Rng rng(20);
  CxTensor a = random_cx(5, 4, rng);
  CxTensor b = random_cx(4, 3, rng);
  CxTensor fused = ag::cmatmul(a, b);
  CxTensor ref = ag::cmatmul_unfused(a, b);
  EXPECT_LT(to_cmat(ref).max_abs_diff(to_cmat(fused)), 1e-5);

  // Same scalar head on both lowerings must give the same parameter grads.
  auto head = [](const CxTensor& c) {
    return ag::add(ag::sum(ag::square(c.re)), ag::sum(ag::square(c.im)));
  };
  head(fused).backward();
  std::vector<std::vector<float>> fused_grads = {a.re.grad(), a.im.grad(),
                                                 b.re.grad(), b.im.grad()};
  for (auto* t : {&a.re, &a.im, &b.re, &b.im}) t->zero_grad();
  head(ref).backward();
  const std::vector<std::vector<float>*> ref_grads = {&a.re.grad(), &a.im.grad(),
                                                      &b.re.grad(), &b.im.grad()};
  for (std::size_t g = 0; g < fused_grads.size(); ++g) {
    for (std::size_t i = 0; i < fused_grads[g].size(); ++i) {
      EXPECT_NEAR(fused_grads[g][i], (*ref_grads[g])[i], 1e-5f)
          << "grad " << g << " elem " << i;
    }
  }
}

TEST(ComplexFused, CmatmulGradcheck) {
  Rng rng(21);
  CxTensor a = random_cx(3, 4, rng);
  CxTensor b = random_cx(4, 2, rng);
  auto fn = [](const std::vector<Tensor>& in) {
    CxTensor c = ag::cmatmul({in[0], in[1]}, {in[2], in[3]});
    return ag::add(ag::sum(ag::square(c.re)), ag::sum(ag::square(c.im)));
  };
  EXPECT_TRUE(ag::gradcheck(fn, {a.re, a.im, b.re, b.im}).ok);
}

TEST(ComplexFused, CmatmulProducesSingleComputeNode) {
  Rng rng(22);
  CxTensor a = random_cx(4, 4, rng);
  CxTensor b = random_cx(4, 4, rng);
  const std::size_t before = ag::debug::op_nodes_created();
  CxTensor c = ag::cmatmul(a, b);
  const std::size_t fused_nodes = ag::debug::op_nodes_created() - before;
  // One packed compute node + the two plane views that route its gradient.
  EXPECT_EQ(fused_nodes, 3u);
  // Both planes are views of the SAME compute node, which owns the four
  // operand planes: the product is exactly 1 tape node.
  ASSERT_EQ(c.re.impl()->parents.size(), 1u);
  ASSERT_EQ(c.im.impl()->parents.size(), 1u);
  EXPECT_EQ(c.re.impl()->parents[0].impl(), c.im.impl()->parents[0].impl());
  EXPECT_EQ(c.re.impl()->parents[0].impl()->parents.size(), 4u);
  // The legacy lowering costs six tape nodes (4 matmuls + 2 combines).
  const std::size_t before_ref = ag::debug::op_nodes_created();
  ag::cmatmul_unfused(a, b);
  EXPECT_EQ(ag::debug::op_nodes_created() - before_ref, 6u);
}

TEST(ComplexFused, CmatmulDroppedImagPlaneStillRoutesGrads) {
  // weight_expr keeps only w.re; gradients must still reach both operands.
  Rng rng(23);
  CxTensor a = random_cx(3, 3, rng);
  CxTensor b = random_cx(3, 3, rng);
  auto fn = [](const std::vector<Tensor>& in) {
    CxTensor c = ag::cmatmul({in[0], in[1]}, {in[2], in[3]});
    return ag::sum(ag::square(c.re));  // imaginary plane dropped
  };
  EXPECT_TRUE(ag::gradcheck(fn, {a.re, a.im, b.re, b.im}).ok);
}

TEST(ComplexFused, BlockTransferMatchesComposition) {
  Rng rng(24);
  const std::int64_t k = 6;
  CxTensor t = random_cx(k, k, rng);
  Tensor p = random_cx(k, k, rng, true).re;
  std::vector<float> pv(static_cast<std::size_t>(k));
  for (auto& v : pv) v = static_cast<float>(rng.uniform(-3, 3));
  Tensor phi = ag::make_tensor(std::move(pv), {k}, true);

  CxTensor fused = ag::block_transfer(p, t, phi);
  // Legacy composition: P @ (T @ R(phi)) via dense products.
  CxTensor r = ag::phase_column(phi);
  CxTensor tr = ag::cmatmul_unfused(t, r);
  CxTensor ref = {ag::matmul(p, tr.re), ag::matmul(p, tr.im)};
  EXPECT_LT(to_cmat(ref).max_abs_diff(to_cmat(fused)), 1e-5);
}

TEST(ComplexFused, BlockTransferGradcheck) {
  Rng rng(25);
  const std::int64_t k = 4;
  CxTensor t = random_cx(k, k, rng);
  Tensor p = random_cx(k, k, rng, true).re;
  std::vector<float> pv(static_cast<std::size_t>(k));
  for (auto& v : pv) v = static_cast<float>(rng.uniform(-3, 3));
  Tensor phi = ag::make_tensor(std::move(pv), {k}, true);
  auto fn = [](const std::vector<Tensor>& in) {
    CxTensor b = ag::block_transfer(in[0], {in[1], in[2]}, in[3]);
    return ag::add(ag::sum(ag::square(b.re)), ag::sum(ag::square(b.im)));
  };
  EXPECT_TRUE(ag::gradcheck(fn, {p, t.re, t.im, phi}).ok);
}

TEST(ComplexFused, CmixIdentityGradcheck) {
  Rng rng(26);
  const std::int64_t k = 4;
  CxTensor block = random_cx(k, k, rng);
  Tensor skip = Tensor::scalar(0.3f, true);
  Tensor select = Tensor::scalar(0.7f, true);
  // Value: skip * I + select * block.
  CxTensor mixed = ag::cmix_identity(skip, select, block);
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      const float expect_re =
          0.7f * block.re.at(i, j) + (i == j ? 0.3f : 0.0f);
      EXPECT_NEAR(mixed.re.at(i, j), expect_re, 1e-6f);
      EXPECT_NEAR(mixed.im.at(i, j), 0.7f * block.im.at(i, j), 1e-6f);
    }
  }
  auto fn = [](const std::vector<Tensor>& in) {
    CxTensor m = ag::cmix_identity(in[0], in[1], {in[2], in[3]});
    return ag::add(ag::sum(ag::square(m.re)), ag::sum(ag::square(m.im)));
  };
  EXPECT_TRUE(ag::gradcheck(fn, {skip, select, block.re, block.im}).ok);
}

TEST(ComplexFused, ColphaseScaleMatchesCmulAndGradchecks) {
  Rng rng(27);
  const std::int64_t k = 5;
  CxTensor a = random_cx(k, k, rng);
  std::vector<float> pv(static_cast<std::size_t>(k));
  for (auto& v : pv) v = static_cast<float>(rng.uniform(-3, 3));
  Tensor phi = ag::make_tensor(std::move(pv), {k}, true);
  CxTensor fused = ag::colphase_scale(a, phi);
  CxTensor e = ag::cexp_neg_i(ag::reshape(phi, {1, k}));
  CxTensor ref = ag::cmul(a, e);  // broadcast path
  EXPECT_LT(to_cmat(ref).max_abs_diff(to_cmat(fused)), 1e-5);
  auto fn = [](const std::vector<Tensor>& in) {
    CxTensor c = ag::colphase_scale({in[0], in[1]}, in[2]);
    return ag::add(ag::sum(ag::square(c.re)), ag::sum(ag::square(c.im)));
  };
  EXPECT_TRUE(ag::gradcheck(fn, {a.re, a.im, phi}).ok);
}

TEST(ComplexFused, CmulSameShapeGradcheck) {
  Rng rng(28);
  CxTensor a = random_cx(3, 4, rng);
  CxTensor b = random_cx(3, 4, rng);
  auto fn = [](const std::vector<Tensor>& in) {
    CxTensor c = ag::cmul({in[0], in[1]}, {in[2], in[3]});
    return ag::add(ag::sum(ag::square(c.re)), ag::sum(ag::square(c.im)));
  };
  EXPECT_TRUE(ag::gradcheck(fn, {a.re, a.im, b.re, b.im}).ok);
}

TEST(Complex, Cabs2) {
  CxTensor a = {Tensor::from_data({2}, {3, 0}), Tensor::from_data({2}, {4, 2})};
  Tensor m = ag::cabs2(a);
  EXPECT_FLOAT_EQ(m.data()[0], 25);
  EXPECT_FLOAT_EQ(m.data()[1], 4);
}

}  // namespace
