#include <gtest/gtest.h>

#include "common/rng.h"
#include "photonics/permutation.h"

namespace {

namespace ph = adept::photonics;
using adept::Rng;
using ph::Permutation;

TEST(Permutation, IdentityAndReversal) {
  const auto id = Permutation::identity(5);
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(ph::crossing_count(id), 0);
  const auto rev = Permutation::reversal(5);
  EXPECT_EQ(rev(0), 4);
  // reversal has maximal inversions n(n-1)/2
  EXPECT_EQ(ph::crossing_count(rev), 10);
}

TEST(Permutation, RejectsNonBijection) {
  EXPECT_THROW(Permutation({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Permutation({0, 3, 1}), std::invalid_argument);
  EXPECT_FALSE(ph::is_valid_permutation({1, 1}));
  EXPECT_TRUE(ph::is_valid_permutation({1, 0}));
}

TEST(Permutation, ComposeMatchesMatrixProduct) {
  Rng rng(1);
  const auto a = Permutation::random(6, rng);
  const auto b = Permutation::random(6, rng);
  const auto c = a.compose(b);
  const ph::RMat mc = c.to_matrix();
  const ph::RMat prod = a.to_matrix() * b.to_matrix();
  EXPECT_LT(mc.max_abs_diff(prod), 1e-12);
}

TEST(Permutation, InverseComposesToIdentity) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto p = Permutation::random(8, rng);
    EXPECT_TRUE(p.compose(p.inverse()).is_identity());
    EXPECT_TRUE(p.inverse().compose(p).is_identity());
  }
}

TEST(Permutation, ApplyConvention) {
  // y[i] = x[p(i)]
  const Permutation p({2, 0, 1});
  const std::vector<int> x = {10, 20, 30};
  const auto y = p.apply(x);
  EXPECT_EQ(y[0], 30);
  EXPECT_EQ(y[1], 10);
  EXPECT_EQ(y[2], 20);
}

TEST(Permutation, MatrixActsLikeApply) {
  Rng rng(3);
  const auto p = Permutation::random(5, rng);
  const ph::CMat m = p.to_cmatrix();
  std::vector<ph::cplx> x = {{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}};
  const auto y = m * x;
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)].real(),
                x[static_cast<std::size_t>(p(i))].real(), 1e-12);
  }
}

TEST(Permutation, FromPositionsInverseConvention) {
  // source lane 0 -> position 2, lane 1 -> 0, lane 2 -> 1
  const auto p = Permutation::from_positions({2, 0, 1});
  EXPECT_EQ(p(2), 0);
  EXPECT_EQ(p(0), 1);
  EXPECT_EQ(p(1), 2);
  EXPECT_THROW(Permutation::from_positions({0, 0, 1}), std::invalid_argument);
}

class CrossingCountTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrossingCountTest, MergeSortMatchesNaive) {
  const auto [k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto p = Permutation::random(k, rng);
  EXPECT_EQ(ph::crossing_count(p), ph::crossing_count_naive(p));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossingCountTest,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16, 32, 64),
                                            ::testing::Values(1, 2, 3)));

TEST(CrossingCount, AdjacentSwapIsOne) {
  EXPECT_EQ(ph::crossing_count(Permutation({1, 0, 2, 3})), 1);
  EXPECT_EQ(ph::crossing_count(Permutation({0, 2, 1, 3})), 1);
}

class RouteTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RouteTest, ScheduleRealizesPermWithMinimalSwaps) {
  const auto [k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(900 + seed));
  const auto p = Permutation::random(k, rng);
  const ph::SwapSchedule schedule = ph::route_permutation(p);
  // Swap count equals the inversion count (optimal routing).
  EXPECT_EQ(schedule.total_swaps(), ph::crossing_count(p));
  // Executing the schedule on the identity arrangement yields p.
  std::vector<int> arr(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) arr[static_cast<std::size_t>(i)] = i;
  for (const auto& layer : schedule.layers) {
    // swaps within one layer must be disjoint
    for (std::size_t a = 0; a + 1 < layer.size(); ++a) {
      EXPECT_GE(layer[a + 1] - layer[a], 2);
    }
    for (int pos : layer) {
      std::swap(arr[static_cast<std::size_t>(pos)], arr[static_cast<std::size_t>(pos + 1)]);
    }
  }
  for (int i = 0; i < k; ++i) EXPECT_EQ(arr[static_cast<std::size_t>(i)], p(i));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RouteTest,
                         ::testing::Combine(::testing::Values(2, 5, 8, 16, 33),
                                            ::testing::Values(1, 2)));

TEST(PermutationFromMatrix, AcceptsDominantMatrix) {
  Rng rng(4);
  const auto p = Permutation::random(6, rng);
  ph::RMat m = p.to_matrix();
  for (auto& v : m.data()) v = v * 0.98 + 0.002;
  Permutation out;
  ASSERT_TRUE(ph::permutation_from_matrix(m, 0.05, &out));
  EXPECT_EQ(out, p);
}

TEST(PermutationFromMatrix, RejectsAmbiguous) {
  ph::RMat m(3, 3);
  for (auto& v : m.data()) v = 1.0 / 3.0;
  EXPECT_FALSE(ph::permutation_from_matrix(m, 0.05, nullptr));
}

TEST(PermutationFromMatrix, RejectsDuplicateColumns) {
  ph::RMat m = ph::RMat::identity(3);
  m.at(1, 1) = 0.0;
  m.at(1, 0) = 1.0;  // rows 0 and 1 both pick column 0
  EXPECT_FALSE(ph::permutation_from_matrix(m, 0.05, nullptr));
}

TEST(Permutation, ToStringReadable) {
  EXPECT_EQ(Permutation({1, 0}).to_string(), "[1 0]");
}

}  // namespace
