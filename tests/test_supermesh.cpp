#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/supermesh.h"
#include "photonics/linalg.h"

namespace {

namespace ag = adept::ag;
namespace core = adept::core;
namespace ph = adept::photonics;
using adept::Rng;
using ag::Tensor;

core::SuperMeshConfig small_config(int k = 4, int blocks = 3, int always_on = 1) {
  core::SuperMeshConfig config;
  config.k = k;
  config.super_blocks_per_unitary = blocks;
  config.always_on_per_unitary = always_on;
  return config;
}

std::vector<Tensor> zero_phases(const core::SuperMesh& mesh) {
  std::vector<Tensor> phases;
  for (int b = 0; b < mesh.blocks_per_unitary(); ++b) {
    phases.push_back(Tensor::zeros({mesh.k()}, true));
  }
  return phases;
}

ph::CMat to_cmat(const ag::CxTensor& t) {
  ph::CMat m(t.dim(0), t.dim(1));
  for (std::int64_t i = 0; i < t.dim(0); ++i) {
    for (std::int64_t j = 0; j < t.dim(1); ++j) {
      m.at(i, j) = ph::cplx(t.re.at(i, j), t.im.at(i, j));
    }
  }
  return m;
}

TEST(SuperMesh, ParameterGroupSizes) {
  Rng rng(1);
  core::SuperMesh mesh(small_config(4, 3, 1), rng);
  // theta per block per unitary
  EXPECT_EQ(mesh.arch_params().size(), 6u);
  // t + p_raw per block per unitary
  EXPECT_EQ(mesh.topology_weights().size(), 12u);
  EXPECT_EQ(mesh.total_blocks(), 6);
}

TEST(SuperMesh, RejectsBadConfig) {
  Rng rng(2);
  EXPECT_THROW(core::SuperMesh(small_config(5), rng), std::invalid_argument);
  EXPECT_THROW(core::SuperMesh(small_config(4, 0), rng), std::invalid_argument);
}

TEST(SuperMesh, AlwaysOnBlocksAreLast) {
  Rng rng(3);
  core::SuperMesh mesh(small_config(4, 4, 2), rng);
  EXPECT_FALSE(mesh.block_always_on(0));
  EXPECT_FALSE(mesh.block_always_on(1));
  EXPECT_TRUE(mesh.block_always_on(2));
  EXPECT_TRUE(mesh.block_always_on(3));
  EXPECT_DOUBLE_EQ(mesh.select_probability(core::Side::u, 2), 1.0);
}

TEST(SuperMesh, SelectProbabilityFollowsTheta) {
  Rng rng(4);
  core::SuperMesh mesh(small_config(4, 3, 0), rng);
  // theta init 0 -> probability 1/2
  EXPECT_NEAR(mesh.select_probability(core::Side::u, 0), 0.5, 1e-6);
  mesh.arch_params()[0].data()[1] = 5.0f;  // boost select logit of U block 0
  EXPECT_GT(mesh.select_probability(core::Side::u, 0), 0.95);
}

TEST(SuperMesh, TileUnitaryRequiresBeginStep) {
  Rng rng(5);
  core::SuperMesh mesh(small_config(), rng);
  EXPECT_THROW(mesh.tile_unitary(core::Side::u, zero_phases(mesh)),
               std::invalid_argument);
}

TEST(SuperMesh, TileUnitaryShapeAndGrads) {
  Rng rng(6);
  core::SuperMesh mesh(small_config(4, 3, 1), rng);
  mesh.begin_step(1.0, rng);
  auto phases = zero_phases(mesh);
  ag::CxTensor u = mesh.tile_unitary(core::Side::u, phases);
  EXPECT_EQ(u.dim(0), 4);
  EXPECT_EQ(u.dim(1), 4);
  ag::Tensor loss = ag::add(ag::sum(ag::square(u.re)), ag::sum(ag::square(u.im)));
  loss.backward();
  // Gradients reach phases, theta, t, and P.
  EXPECT_TRUE(phases[0].has_grad());
  bool theta_grad = false;
  for (auto& t : mesh.arch_params()) theta_grad = theta_grad || t.has_grad();
  EXPECT_TRUE(theta_grad);
  bool weight_grad = false;
  for (auto& t : mesh.topology_weights()) weight_grad = weight_grad || t.has_grad();
  EXPECT_TRUE(weight_grad);
}

TEST(SuperMesh, RelaxedPermsCount) {
  Rng rng(7);
  core::SuperMesh mesh(small_config(4, 3, 1), rng);
  mesh.begin_step(1.0, rng);
  EXPECT_EQ(mesh.all_relaxed_perms().size(), 6u);
}

TEST(SuperMesh, LegalizeFreezesPermutations) {
  Rng rng(8);
  core::SuperMesh mesh(small_config(4, 3, 1), rng);
  EXPECT_FALSE(mesh.permutations_frozen());
  mesh.legalize_permutations(rng);
  EXPECT_TRUE(mesh.permutations_frozen());
  // Frozen perms are excluded from the trainable weights (t latents remain).
  EXPECT_EQ(mesh.topology_weights().size(), 6u);
  // Every block permutation is legal.
  for (int b = 0; b < mesh.blocks_per_unitary(); ++b) {
    const auto p = mesh.block_permutation(core::Side::u, b, rng);
    EXPECT_TRUE(ph::is_valid_permutation(p.map()));
  }
}

TEST(SuperMesh, UnitaryAfterLegalizationIsExactlyUnitary) {
  // Legal P, binarized t, and pure phases give a physical (unitary) mesh.
  Rng rng(9);
  core::SuperMesh mesh(small_config(4, 3, 3), rng);  // all blocks always-on
  mesh.legalize_permutations(rng);
  mesh.begin_step(0.5, rng, /*stochastic=*/false);
  auto phases = zero_phases(mesh);
  ag::CxTensor u = mesh.tile_unitary(core::Side::u, phases);
  EXPECT_LT(to_cmat(u).unitarity_error(), 1e-5);
}

TEST(SuperMesh, ExpectedFootprintRespondsToTheta) {
  Rng rng(10);
  core::SuperMesh mesh(small_config(8, 4, 1), rng);
  const ph::Pdk pdk = ph::Pdk::amf();
  const double base = mesh.expected_footprint(pdk);
  // Boost all select logits: expected footprint must increase.
  for (auto& theta : mesh.arch_params()) theta.data()[1] = 4.0f;
  EXPECT_GT(mesh.expected_footprint(pdk), base);
  // Suppress all: decrease below base.
  for (auto& theta : mesh.arch_params()) {
    theta.data()[1] = -4.0f;
  }
  EXPECT_LT(mesh.expected_footprint(pdk), base);
}

TEST(SuperMesh, ExpectedFootprintCacheStableAndInvalidatedByStep) {
  Rng rng(21);
  core::SuperMesh mesh(small_config(8, 4, 1), rng);
  const ph::Pdk pdk = ph::Pdk::amf();
  // Repeated queries between steps hit the (side, block) cache and must
  // agree exactly with the first (the SPL legalization inside is seeded).
  const double first = mesh.expected_footprint(pdk);
  EXPECT_EQ(mesh.expected_footprint(pdk), first);
  EXPECT_EQ(mesh.expected_footprint(pdk), first);
  // Mutating a coupler latent across a step boundary must be reflected: a
  // begin_step invalidates the cache, so the DC count changes the value.
  mesh.begin_step(1.0, rng, /*stochastic=*/false);
  for (auto& t : mesh.topology_weights()) {
    for (auto& v : t.data()) v = 0.9f;  // all couplers strongly "bar"
  }
  mesh.begin_step(1.0, rng, /*stochastic=*/false);
  const double after = mesh.expected_footprint(pdk);
  EXPECT_NE(after, first);
  EXPECT_EQ(mesh.expected_footprint(pdk), after);
}

TEST(SuperMesh, FootprintPenaltySignsMatchBranch) {
  Rng rng(11);
  core::SuperMesh mesh(small_config(8, 4, 1), rng);
  core::FootprintConfig config;
  config.pdk = ph::Pdk::amf();
  mesh.begin_step(1.0, rng);
  // Very tight budget -> over-budget branch -> positive penalty.
  config.f_min = 10;
  config.f_max = 20;
  EXPECT_GT(mesh.footprint_penalty_expr(config).item(), 0.0f);
  // Huge budget -> under-budget branch -> negative penalty.
  config.f_min = 5000;
  config.f_max = 9000;
  EXPECT_LT(mesh.footprint_penalty_expr(config).item(), 0.0f);
}

TEST(SuperMesh, SampleTopologyHonorsFootprintWhenFeasible) {
  Rng rng(12);
  core::SuperMesh mesh(small_config(8, 6, 1), rng);
  mesh.legalize_permutations(rng);
  const ph::Pdk pdk = ph::Pdk::amf();
  // A generous band containing achievable footprints.
  const auto topo = mesh.sample_topology(rng, pdk, 50, 700, 512, "test");
  topo.validate();
  const double f = topo.footprint_um2(pdk) / 1000.0;
  EXPECT_GE(f, 50.0);
  EXPECT_LE(f, 700.0);
  EXPECT_EQ(topo.name, "test");
  EXPECT_GE(topo.counts().blocks, 2);  // always-on blocks of U and V
}

TEST(SuperMesh, SampleTopologyParitiesInterleave) {
  Rng rng(13);
  core::SuperMesh mesh(small_config(8, 4, 4), rng);  // deterministic: all on
  mesh.legalize_permutations(rng);
  const auto topo = mesh.sample_topology(rng, ph::Pdk::amf(), 0, 1e9);
  ASSERT_EQ(topo.u_blocks.size(), 4u);
  EXPECT_EQ(topo.u_blocks[0].start, 0);
  EXPECT_EQ(topo.u_blocks[1].start, 1);
  EXPECT_EQ(topo.u_blocks[2].start, 0);
  EXPECT_EQ(topo.u_blocks[3].start, 1);
}

TEST(SuperMeshConfig, FromBoundsUsesEq16) {
  core::FootprintConfig fc;
  fc.pdk = ph::Pdk::amf();
  fc.f_min = 240;
  fc.f_max = 300;
  const auto config = core::SuperMeshConfig::from_bounds(8, fc);
  // B_max=6, B_min=3 (see test_footprint) -> per unitary 3 / 1.
  EXPECT_EQ(config.super_blocks_per_unitary, 3);
  EXPECT_EQ(config.always_on_per_unitary, 1);
  EXPECT_EQ(config.k, 8);
}

TEST(SuperMeshConfig, FromBoundsRespectsCap) {
  core::FootprintConfig fc;
  fc.pdk = ph::Pdk::amf();
  fc.f_min = 240;
  fc.f_max = 30000;
  const auto config = core::SuperMeshConfig::from_bounds(8, fc, 10);
  EXPECT_LE(config.super_blocks_per_unitary, 10);
}

}  // namespace
