#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/layers.h"

namespace {

namespace ag = adept::ag;
namespace nn = adept::nn;
using adept::Rng;
using ag::Tensor;

Tensor random_input(std::vector<std::int64_t> shape, Rng& rng, bool rg = false) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  std::vector<float> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1, 1));
  return ag::make_tensor(std::move(data), std::move(shape), rg);
}

TEST(Linear, ShapeAndBias) {
  Rng rng(1);
  nn::Linear fc(6, 3, rng);
  Tensor x = random_input({4, 6}, rng);
  Tensor y = fc.forward(x);
  EXPECT_EQ(y.dim(0), 4);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_EQ(fc.parameters().size(), 2u);
  nn::Linear no_bias(6, 3, rng, false);
  EXPECT_EQ(no_bias.parameters().size(), 1u);
}

TEST(Linear, GradientsFlowToWeightAndBias) {
  Rng rng(2);
  nn::Linear fc(3, 2, rng);
  Tensor x = random_input({5, 3}, rng);
  Tensor loss = ag::sum(ag::square(fc.forward(x)));
  loss.backward();
  for (auto& p : fc.parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(Conv2d, OutputGeometry) {
  Rng rng(3);
  nn::Conv2d conv(3, 8, 5, rng, /*stride=*/1, /*pad=*/0);
  Tensor x = random_input({2, 3, 28, 28}, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_EQ(y.dim(2), 24);
  EXPECT_EQ(y.dim(3), 24);
}

TEST(Conv2d, SamePaddingGeometry) {
  Rng rng(4);
  nn::Conv2d conv(2, 4, 3, rng, 1, 1);
  Tensor x = random_input({1, 2, 8, 8}, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(2), 8);
  EXPECT_EQ(y.dim(3), 8);
}

TEST(Conv2d, MatchesManualConvolution) {
  Rng rng(5);
  // 1x1x3x3 input, 1 output channel, 2x2 kernel: verify one output by hand.
  nn::Conv2d conv(1, 1, 2, rng, 1, 0, /*bias=*/false);
  Tensor x = Tensor::from_data({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = conv.forward(x);
  const auto& w = conv.parameters()[0].data();  // [4, 1] = k00,k01,k10,k11
  const float expected = 1 * w[0] + 2 * w[1] + 4 * w[2] + 5 * w[3];
  EXPECT_NEAR(y.data()[0], expected, 1e-5);
}

TEST(BatchNorm2d, TrainEvalConsistency) {
  Rng rng(6);
  nn::BatchNorm2d bn(3);
  Tensor x = random_input({8, 3, 4, 4}, rng);
  bn.set_training(true);
  for (int i = 0; i < 20; ++i) bn.forward(x);  // accumulate running stats
  bn.set_training(false);
  Tensor y = bn.forward(x);
  // After many identical batches, eval output ~ train output stats: mean ~0.
  double s = 0;
  for (float v : y.data()) s += v;
  EXPECT_NEAR(s / static_cast<double>(y.numel()), 0.0, 0.05);
}

TEST(ReLUAndPools, Shapes) {
  Rng rng(7);
  Tensor x = random_input({2, 3, 8, 8}, rng);
  nn::ReLU relu;
  Tensor r = relu.forward(x);
  for (float v : r.data()) EXPECT_GE(v, 0.0f);
  nn::MaxPool2d pool(2, 2);
  EXPECT_EQ(pool.forward(x).dim(2), 4);
  nn::AdaptiveAvgPool2d apool(5, 5);
  EXPECT_EQ(apool.forward(x).dim(3), 5);
  nn::Flatten flatten;
  Tensor f = flatten.forward(x);
  EXPECT_EQ(f.dim(0), 2);
  EXPECT_EQ(f.dim(1), 3 * 8 * 8);
}

TEST(Sequential, ComposesAndCollectsParams) {
  Rng rng(8);
  nn::Sequential seq;
  seq.add(std::make_shared<nn::Linear>(4, 8, rng));
  seq.add(std::make_shared<nn::ReLU>());
  seq.add(std::make_shared<nn::Linear>(8, 2, rng));
  Tensor x = random_input({3, 4}, rng);
  Tensor y = seq.forward(x);
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_EQ(seq.parameters().size(), 4u);
  seq.set_training(false);
  EXPECT_FALSE(seq.modules()[0]->training());
}

TEST(KaimingInit, BoundScalesWithFanIn) {
  Rng rng(9);
  Tensor w1 = nn::kaiming_uniform({100, 10}, 100, rng);
  Tensor w2 = nn::kaiming_uniform({100, 10}, 10000, rng);
  auto max_abs = [](const Tensor& t) {
    float m = 0;
    for (float v : t.data()) m = std::max(m, std::fabs(v));
    return m;
  };
  EXPECT_GT(max_abs(w1), max_abs(w2));
  EXPECT_LE(max_abs(w1), std::sqrt(6.0 / 100.0) + 1e-6);
}

TEST(Conv2d, EndToEndGradcheck) {
  Rng rng(10);
  nn::Conv2d conv(1, 2, 3, rng, 1, 1);
  Tensor x = random_input({1, 1, 4, 4}, rng, true);
  auto params = conv.parameters();
  std::vector<Tensor> inputs = {x, params[0], params[1]};
  auto fn = [&conv, &x](const std::vector<Tensor>&) {
    return ag::sum(ag::square(conv.forward(x)));
  };
  const auto result = ag::gradcheck(fn, inputs, 1e-2, 2e-2, 8e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

}  // namespace
