// backend/context.h + the device-plan seam in runtime/plan.h and
// CompiledModel::run.
//
// The contract under test: the serial and threaded CPU execution contexts
// are ASSERT_EQ-bit-identical — for fp32 plans at every SIMD dispatch
// level and batch size, and for the opt-in int8 mode (whose integer
// kernels carry their own cross-thread exactness promise). That holds by
// construction (kernel chunk boundaries are pure functions of problem
// size, never thread count), and this file is the regression fence around
// the construction. Also covered: the ADEPT_DEVICE knob's clamp-to-default
// behavior, device tags in the plan dump, workspace-installed per-worker
// contexts, and error propagation out of the context dispatch loop via the
// runtime.context.step failpoint — standalone run() and through a serving
// worker.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <sstream>
#include <vector>

#include "backend/context.h"
#include "backend/dispatch.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/models.h"
#include "photonics/builders.h"
#include "runtime/compiled_model.h"
#include "runtime/server.h"

namespace {

namespace be = adept::backend;
namespace ph = adept::photonics;
namespace nn = adept::nn;
namespace rt = adept::runtime;
using adept::Rng;

std::vector<float> random_input(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// ONN MLP with odd widths (17 -> 9 -> 4) so gemm tails are in play.
nn::OnnModel make_mlp(std::uint64_t seed) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(4));
  Rng rng(seed);
  nn::OnnModel model;
  model.net = std::make_shared<nn::Sequential>();
  auto l1 =
      std::make_shared<nn::ONNLinear>(17, 9, nn::PtcBinding::fixed(topo), rng);
  auto l2 = std::make_shared<nn::ONNLinear>(9, 4, nn::PtcBinding::dense(), rng);
  model.net->add(l1);
  model.net->add(std::make_shared<nn::ReLU>());
  model.net->add(l2);
  model.onn_layers = {l1.get(), l2.get()};
  return model;
}

// LeNet-5 exercises every step kind the plan knows: conv (+bias +relu),
// maxpool, linear, avgpool-free tail — the full dispatch-loop surface.
nn::OnnModel make_lenet(std::uint64_t seed) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  Rng rng(seed);
  return nn::make_lenet5(1, 16, 4, nn::PtcBinding::fixed(topo), rng, 0.5);
}

rt::CompiledModel freeze_on(nn::OnnModel& model, std::vector<std::int64_t> dims,
                            be::Device device, bool quantize = false) {
  rt::FreezeOptions o;
  o.device = device;
  o.quantize_int8 = quantize;
  return rt::CompiledModel::freeze(model, std::move(dims), o);
}

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " element " << i;
  }
}

// RAII env override that restores the previous value (other suites read
// ADEPT_* knobs too).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) prev_ = prev;
    had_prev_ = prev != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_prev_) {
      ::setenv(name_, prev_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::string prev_;
  bool had_prev_ = false;
};

// ---- serial vs threaded bit-exactness -------------------------------------

TEST(ContextParity, SerialThreadedBitIdenticalAcrossSimdLevels) {
  nn::OnnModel mlp = make_mlp(7);
  nn::OnnModel lenet = make_lenet(19);
  rt::CompiledModel mlp_s = freeze_on(mlp, {17}, be::Device::cpu_serial);
  rt::CompiledModel mlp_t = freeze_on(mlp, {17}, be::Device::cpu_threaded);
  rt::CompiledModel net_s =
      freeze_on(lenet, {1, 16, 16}, be::Device::cpu_serial);
  rt::CompiledModel net_t =
      freeze_on(lenet, {1, 16, 16}, be::Device::cpu_threaded);
  Rng rng(3);
  for (be::SimdLevel level : be::available_simd_levels()) {
    be::SimdScope scope(level);
    for (std::int64_t batch : {1, 3, 16}) {
      const std::string tag = std::string("level ") +
                              be::simd_level_name(level) + " batch " +
                              std::to_string(batch);
      const std::vector<float> xm = random_input(batch * 17, rng);
      expect_bit_identical(mlp_s.run(xm, batch), mlp_t.run(xm, batch),
                           "mlp " + tag);
      const std::vector<float> xl = random_input(batch * 256, rng);
      expect_bit_identical(net_s.run(xl, batch), net_t.run(xl, batch),
                           "lenet " + tag);
    }
  }
}

TEST(ContextParity, SerialThreadedBitIdenticalInt8) {
  nn::OnnModel model = make_lenet(23);
  rt::CompiledModel qs =
      freeze_on(model, {1, 16, 16}, be::Device::cpu_serial, /*quantize=*/true);
  rt::CompiledModel qt = freeze_on(model, {1, 16, 16},
                                   be::Device::cpu_threaded, /*quantize=*/true);
  Rng rng(5);
  for (be::SimdLevel level : be::available_simd_levels()) {
    be::SimdScope scope(level);
    for (std::int64_t batch : {1, 5, 16}) {
      const std::vector<float> x = random_input(batch * 256, rng);
      expect_bit_identical(
          qs.run(x, batch), qt.run(x, batch),
          std::string("int8 level ") + be::simd_level_name(level) + " batch " +
              std::to_string(batch));
    }
  }
}

// A workspace-installed context (the Server's per-worker shape) must route
// identically to the process-wide singleton fallback.
TEST(ContextParity, WorkspaceInstalledContextsMatchSingletons) {
  nn::OnnModel model = make_lenet(29);
  rt::CompiledModel cm =
      freeze_on(model, {1, 16, 16}, be::Device::cpu_threaded);
  Rng rng(7);
  const std::int64_t batch = 4;
  const std::vector<float> x = random_input(batch * 256, rng);
  const std::vector<float> ref = cm.run(x, batch);

  rt::CompiledModel::Workspace ws;
  std::unique_ptr<be::ExecContext> ctxs[be::kDeviceCount];
  for (int d = 0; d < be::kDeviceCount; ++d) {
    ctxs[d] = be::make_context(static_cast<be::Device>(d));
    ws.contexts[d] = ctxs[d].get();
  }
  std::vector<float> out(ref.size());
  cm.run(x.data(), batch, out.data(), ws);
  expect_bit_identical(ref, out, "owned contexts");
}

// ---- ADEPT_DEVICE knob ----------------------------------------------------

TEST(ContextKnob, ParseClampsUnknownToDefault) {
  EXPECT_EQ(be::parse_device("serial", be::Device::cpu_threaded),
            be::Device::cpu_serial);
  EXPECT_EQ(be::parse_device("threaded", be::Device::cpu_serial),
            be::Device::cpu_threaded);
  // Unknown names clamp to the default, never error (the ADEPT_SIMD rule).
  EXPECT_EQ(be::parse_device("cuda", be::Device::cpu_threaded),
            be::Device::cpu_threaded);
  EXPECT_EQ(be::parse_device("", be::Device::cpu_threaded),
            be::Device::cpu_threaded);
  EXPECT_EQ(be::parse_device("SERIAL", be::Device::cpu_threaded),
            be::Device::cpu_threaded);
}

TEST(ContextKnob, EnvSelectsDefaultDeviceAndClampsGarbage) {
  {
    EnvGuard env("ADEPT_DEVICE", "serial");
    EXPECT_EQ(be::default_device(), be::Device::cpu_serial);
    EXPECT_EQ(rt::FreezeOptions::from_env().device, be::Device::cpu_serial);
    EXPECT_EQ(rt::ServerConfig::from_env().device, be::Device::cpu_serial);
  }
  {
    EnvGuard env("ADEPT_DEVICE", "threaded");
    EXPECT_EQ(be::default_device(), be::Device::cpu_threaded);
  }
  {
    EnvGuard env("ADEPT_DEVICE", "gpu7");
    EXPECT_EQ(be::default_device(), be::Device::cpu_threaded);
    EXPECT_EQ(rt::FreezeOptions::from_env().device, be::Device::cpu_threaded);
  }
  {
    EnvGuard env("ADEPT_DEVICE", nullptr);
    EXPECT_EQ(be::default_device(), be::Device::cpu_threaded);
  }
}

TEST(ContextKnob, DeviceNamesRoundTrip) {
  for (int d = 0; d < be::kDeviceCount; ++d) {
    const be::Device dev = static_cast<be::Device>(d);
    EXPECT_EQ(be::parse_device(be::device_name(dev), be::Device::cpu_threaded),
              dev);
  }
}

// ---- plan dump device tags ------------------------------------------------

TEST(ContextDump, PlanListsPerStepDeviceTags) {
  nn::OnnModel model = make_mlp(11);
  for (be::Device dev : {be::Device::cpu_serial, be::Device::cpu_threaded}) {
    rt::CompiledModel cm = freeze_on(model, {17}, dev);
    std::ostringstream os;
    cm.dump_plan(os);
    const std::string dump = os.str();
    const std::string tag = std::string("@") + be::device_name(dev);
    // Every step line and every slot in the pool summary carries the tag.
    std::size_t count = 0;
    for (std::size_t pos = dump.find(tag); pos != std::string::npos;
         pos = dump.find(tag, pos + 1)) {
      ++count;
    }
    EXPECT_GE(count, cm.num_steps() + cm.num_slots()) << dump;
    const char* other = dev == be::Device::cpu_serial ? "@threaded" : "@serial";
    EXPECT_EQ(dump.find(other), std::string::npos) << dump;
  }
}

// ---- error propagation out of the dispatch loop ---------------------------

TEST(ContextFailpoint, StepFailureThrowsFromRun) {
  nn::OnnModel model = make_mlp(13);
  rt::CompiledModel cm = freeze_on(model, {17}, be::Device::cpu_threaded);
  Rng rng(17);
  const std::vector<float> x = random_input(17, rng);
  const std::uint64_t before = adept::failpoint::hit_count("runtime.context.step");
  {
    adept::failpoint::Scoped fp("runtime.context.step", "throw");
    EXPECT_THROW(cm.run(x, 1), adept::failpoint::Injected);
  }
  EXPECT_GT(adept::failpoint::hit_count("runtime.context.step"), before);
  // Disarmed, the same plan serves normally again.
  EXPECT_EQ(cm.run(x, 1).size(), 4u);
}

TEST(ContextFailpoint, StepErrorSpecRunsTheSitesOwnErrorPath) {
  nn::OnnModel model = make_mlp(31);
  rt::CompiledModel cm = freeze_on(model, {17}, be::Device::cpu_serial);
  Rng rng(37);
  const std::vector<float> x = random_input(17, rng);
  adept::failpoint::Scoped fp("runtime.context.step", "error");
  // "error" makes maybe_fail return true: the dispatch loop maps that onto
  // its own failure handling, a std::runtime_error naming the context.
  try {
    cm.run(x, 1);
    FAIL() << "expected the context dispatch loop to fail";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("runtime.context.step"), std::string::npos) << msg;
    EXPECT_NE(msg.find("serial"), std::string::npos) << msg;
  }
}

TEST(ContextFailpoint, StepFailureSurfacesThroughServingFuture) {
  nn::OnnModel model = make_mlp(41);
  rt::CompiledModel cm = freeze_on(model, {17}, be::Device::cpu_threaded);
  rt::ServerConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 4;
  cfg.max_wait_us = 0;
  rt::Server server(cm, cfg);
  Rng rng(43);
  {
    adept::failpoint::Scoped fp("runtime.context.step", "throw");
    auto fut = server.submit(random_input(17, rng));
    EXPECT_THROW(fut.get(), adept::failpoint::Injected);
  }
  // The worker survives an injected step failure: the next request is
  // answered normally by the same (sole) worker.
  auto ok = server.submit(random_input(17, rng));
  EXPECT_EQ(ok.get().size(), 4u);
}

// ---- context plumbing details ---------------------------------------------

TEST(ContextPlumbing, WorkspaceAllocIsAlignedAndReleases) {
  for (int d = 0; d < be::kDeviceCount; ++d) {
    const be::ExecContext& ctx = be::context_for(static_cast<be::Device>(d));
    void* p = ctx.alloc_workspace(1000);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    ctx.free_workspace(p);
    void* z = ctx.alloc_workspace(0);  // zero-byte asks still return memory
    ASSERT_NE(z, nullptr);
    ctx.free_workspace(z);
    ctx.free_workspace(nullptr);  // null is a no-op, like free()
    ctx.finish();                 // synchronous contexts: trivially complete
  }
}

TEST(ContextPlumbing, SingletonsReportTheirDevice) {
  EXPECT_EQ(be::context_for(be::Device::cpu_serial).device(),
            be::Device::cpu_serial);
  EXPECT_EQ(be::context_for(be::Device::cpu_threaded).device(),
            be::Device::cpu_threaded);
  EXPECT_STREQ(be::context_for(be::Device::cpu_serial).name(), "serial");
  EXPECT_STREQ(be::context_for(be::Device::cpu_threaded).name(), "threaded");
  auto owned = be::make_context(be::Device::cpu_serial);
  EXPECT_EQ(owned->device(), be::Device::cpu_serial);
}

TEST(ContextPlumbing, ForEachCoversEveryIndexExactlyOnce) {
  for (int d = 0; d < be::kDeviceCount; ++d) {
    const be::ExecContext& ctx = be::context_for(static_cast<be::Device>(d));
    const std::int64_t n = 10'007;  // prime, so chunks never divide evenly
    std::vector<std::int32_t> hits(static_cast<std::size_t>(n), 0);
    ctx.for_each(n, 64, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        hits[static_cast<std::size_t>(i)] += 1;
      }
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1) << "index " << i;
    }
  }
}

}  // namespace
