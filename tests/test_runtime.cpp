// src/runtime: checkpointing, the compiled tape-free inference engine, and
// the micro-batching server.
//
// The headline guarantees are asserted EXACTLY (ASSERT_EQ on floats, not
// approx): CompiledModel::run is bit-identical to model.forward in eval
// mode, checkpoint round-trips restore bit-identical parameters and
// predictions, and the server returns bit-identical rows at any worker
// count / batch composition.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "autograd/ops.h"
#include "common/binio.h"
#include "common/rng.h"
#include "common/version.h"
#include "core/supermesh.h"
#include "data/synthetic.h"
#include "nn/layers.h"
#include "nn/models.h"
#include "nn/onn_layers.h"
#include "nn/train.h"
#include "photonics/builders.h"
#include "runtime/checkpoint.h"
#include "runtime/compiled_model.h"
#include "runtime/server.h"

namespace {

namespace ph = adept::photonics;
namespace nn = adept::nn;
namespace rt = adept::runtime;
namespace core = adept::core;
using adept::Rng;
using adept::ag::Tensor;

// Random [n, ...dims] input batch.
std::vector<float> random_input(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// Eval-mode tape forward of a flat input batch.
std::vector<float> tape_forward(nn::OnnModel& model,
                                const std::vector<float>& input,
                                std::vector<std::int64_t> shape) {
  adept::ag::NoGradGuard guard;
  const bool was_training = model.training();
  model.set_training(false);
  Tensor x = adept::ag::make_tensor(input, std::move(shape), false);
  Tensor y = model.net->forward(x);
  model.set_training(was_training);
  return y.data();
}

// Small ONN MLP: ONNLinear(18 -> 10, PTC) + ReLU + ONNLinear(10 -> 4, dense).
nn::OnnModel make_mlp(std::uint64_t seed) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(4));
  Rng rng(seed);
  nn::OnnModel model;
  model.net = std::make_shared<nn::Sequential>();
  auto l1 = std::make_shared<nn::ONNLinear>(18, 10, nn::PtcBinding::fixed(topo), rng);
  auto l2 = std::make_shared<nn::ONNLinear>(10, 4, nn::PtcBinding::dense(), rng);
  model.net->add(l1);
  model.net->add(std::make_shared<nn::ReLU>());
  model.net->add(l2);
  model.onn_layers = {l1.get(), l2.get()};
  return model;
}

// Proxy CNN (conv/BN/ReLU/avgpool/flatten/fc) on 1x12x12 inputs, PTC-bound.
nn::OnnModel make_cnn(std::uint64_t seed, int classes = 4, int width = 6) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  Rng rng(seed);
  return nn::make_proxy_cnn(1, 12, classes, nn::PtcBinding::fixed(topo), rng, width);
}

TEST(CompiledModel, BitExactVsTapeMLP) {
  nn::OnnModel model = make_mlp(7);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  EXPECT_EQ(cm.input_numel(), 18);
  EXPECT_EQ(cm.output_numel(), 4);

  Rng rng(3);
  for (std::int64_t batch : {1, 5, 17}) {
    const std::vector<float> x = random_input(batch * 18, rng);
    const std::vector<float> ref = tape_forward(model, x, {batch, 18});
    const std::vector<float> got = cm.run(x, batch);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << "batch " << batch << " element " << i;
    }
  }
}

TEST(CompiledModel, BitExactVsTapeProxyCnn) {
  nn::OnnModel model = make_cnn(11);
  // Drive a few training steps first so BatchNorm running stats are
  // non-trivial (the compiled plan must reproduce the eval branch exactly).
  adept::data::DatasetSpec spec = adept::data::DatasetSpec::mnist_like();
  spec.height = spec.width = 12;
  spec.classes = 4;
  adept::data::SyntheticDataset train(spec, 32, 1);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 16;
  const auto stats = nn::train_classifier(model, train, train, tc);
  (void)stats;

  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {1, 12, 12});
  Rng rng(5);
  for (std::int64_t batch : {1, 4}) {
    const std::vector<float> x = random_input(batch * 144, rng);
    const std::vector<float> ref = tape_forward(model, x, {batch, 1, 12, 12});
    const std::vector<float> got = cm.run(x, batch);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << "batch " << batch << " element " << i;
    }
  }
}

TEST(CompiledModel, BitExactVsTapeLenetMaxpool) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  Rng rng(13);
  nn::OnnModel model =
      nn::make_lenet5(1, 16, 4, nn::PtcBinding::fixed(topo), rng, 0.5);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {1, 16, 16});
  Rng in_rng(2);
  const std::vector<float> x = random_input(3 * 256, in_rng);
  const std::vector<float> ref = tape_forward(model, x, {3, 1, 16, 16});
  const std::vector<float> got = cm.run(x, 3);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(ref[i], got[i]);
}

TEST(CompiledModel, FrozenWeightsAreSnapshots) {
  nn::OnnModel model = make_mlp(19);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  Rng rng(1);
  const std::vector<float> x = random_input(2 * 18, rng);
  const std::vector<float> before = cm.run(x, 2);
  // Mutate the source model; the compiled plan must not move.
  for (auto& p : model.parameters()) {
    for (auto& v : p.data()) v += 0.25f;
  }
  adept::bump_param_version();
  const std::vector<float> after = cm.run(x, 2);
  ASSERT_EQ(before, after);
  // And the tape path must now differ (sanity that the mutation mattered).
  const std::vector<float> tape = tape_forward(model, x, {2, 18});
  bool any_diff = false;
  for (std::size_t i = 0; i < tape.size(); ++i) any_diff |= tape[i] != before[i];
  EXPECT_TRUE(any_diff);
}

TEST(CompiledModel, RejectsUnknownShapes) {
  nn::OnnModel model = make_mlp(23);
  EXPECT_THROW(rt::CompiledModel::freeze(model, {17}), std::runtime_error);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  EXPECT_THROW(cm.run(std::vector<float>(17), 1), std::runtime_error);
}

// ---- checkpointing ------------------------------------------------------

TEST(Checkpoint, RoundTripBitExact) {
  nn::OnnModel model = make_cnn(29);
  adept::data::DatasetSpec spec = adept::data::DatasetSpec::mnist_like();
  spec.height = spec.width = 12;
  spec.classes = 4;
  adept::data::SyntheticDataset train(spec, 32, 2);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 16;
  nn::train_classifier(model, train, train, tc);

  const ph::Pdk pdk = ph::Pdk::aim();
  const std::string path = ::testing::TempDir() + "adept_ckpt_roundtrip.bin";
  rt::save_checkpoint(model, path, &pdk);
  rt::LoadedCheckpoint loaded = rt::load_checkpoint(path);

  ASSERT_TRUE(loaded.pdk.has_value());
  EXPECT_EQ(loaded.pdk->name, "AIM");
  EXPECT_EQ(loaded.pdk->ps_area_um2, pdk.ps_area_um2);
  EXPECT_EQ(loaded.pdk->cr_area_um2, pdk.cr_area_um2);

  // Parameters restore bit for bit, in the same traversal order.
  auto p0 = model.parameters();
  auto p1 = loaded.model.parameters();
  ASSERT_EQ(p0.size(), p1.size());
  for (std::size_t i = 0; i < p0.size(); ++i) {
    ASSERT_EQ(p0[i].data(), p1[i].data()) << "parameter " << i;
  }
  EXPECT_EQ(model.onn_layers.size(), loaded.model.onn_layers.size());

  // Eval predictions restore bit for bit (BatchNorm running stats incl.).
  Rng rng(4);
  const std::vector<float> x = random_input(4 * 144, rng);
  ASSERT_EQ(tape_forward(model, x, {4, 1, 12, 12}),
            tape_forward(loaded.model, x, {4, 1, 12, 12}));

  // And the loaded model freezes to the same compiled results.
  rt::CompiledModel cm = rt::CompiledModel::freeze(loaded.model, {1, 12, 12});
  ASSERT_EQ(tape_forward(model, x, {4, 1, 12, 12}), cm.run(x, 4));
  std::remove(path.c_str());
}

TEST(Checkpoint, RoundTripInMemoryMLP) {
  nn::OnnModel model = make_mlp(31);
  const std::string bytes = rt::encode_checkpoint(model);
  rt::LoadedCheckpoint loaded = rt::decode_checkpoint(bytes);
  EXPECT_FALSE(loaded.pdk.has_value());
  Rng rng(6);
  const std::vector<float> x = random_input(3 * 18, rng);
  ASSERT_EQ(tape_forward(model, x, {3, 18}), tape_forward(loaded.model, x, {3, 18}));
}

// Expects decode to throw a runtime_error whose message contains `needle`.
void expect_decode_error(const std::string& bytes, const std::string& needle) {
  try {
    rt::decode_checkpoint(bytes);
    FAIL() << "expected failure mentioning \"" << needle << "\"";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(Checkpoint, CorruptFilesFailActionably) {
  nn::OnnModel model = make_mlp(37);
  const std::string good = rt::encode_checkpoint(model);
  ASSERT_NO_THROW(rt::decode_checkpoint(good));

  {  // bad magic
    std::string bad = good;
    bad[0] = 'X';
    expect_decode_error(bad, "bad magic");
  }
  {  // version skew
    std::string bad = good;
    bad[8] = 9;
    expect_decode_error(bad, "unsupported format version 9");
  }
  {  // truncated payload
    expect_decode_error(good.substr(0, good.size() - 25), "truncated payload");
  }
  {  // absurd payload size (u64 near-max must not wrap the bounds check)
    std::string bad = good;
    for (int i = 12; i < 20; ++i) bad[static_cast<std::size_t>(i)] = '\xff';
    expect_decode_error(bad, "truncated payload");
  }
  {  // truncated header
    expect_decode_error(good.substr(0, 10), "truncated header");
  }
  {  // flipped payload byte -> CRC catches it
    std::string bad = good;
    bad[good.size() / 2] ^= 0x40;
    expect_decode_error(bad, "CRC mismatch");
  }
  {  // empty file
    expect_decode_error("", "truncated header");
  }
  {  // bytes appended after the CRC trailer
    expect_decode_error(good + "extra", "trailing garbage");
  }
}

TEST(Checkpoint, ImplausibleCountsFailActionably) {
  // A crafted file can carry a VALID CRC over garbage counts; allocation
  // sizing must still fail through the contextualized path, not bad_alloc.
  nn::OnnModel model = make_mlp(59);
  const std::string good = rt::encode_checkpoint(model);
  const std::size_t payload_begin = 8 + 4 + 8;  // magic + version + size
  std::string payload = good.substr(payload_begin, good.size() - payload_begin - 4);
  // Payload layout starts: u8 pdk flag, u32 topology count.
  for (int i = 1; i <= 4; ++i) payload[static_cast<std::size_t>(i)] = '\xff';
  std::string bad = good.substr(0, payload_begin) + payload;
  adept::binio::put_u32(bad, rt::crc32(payload));  // re-seal the CRC
  expect_decode_error(bad, "implausible topology count");
}

TEST(Checkpoint, RejectsLiveSupermeshBindings) {
  core::SuperMeshConfig mc;
  mc.k = 4;
  mc.super_blocks_per_unitary = 2;
  mc.always_on_per_unitary = 1;
  Rng mesh_rng(3);
  core::SuperMesh mesh(mc, mesh_rng);
  Rng step_rng(4);
  mesh.begin_step(0.5, step_rng, /*stochastic=*/false);

  Rng rng(5);
  nn::OnnModel model;
  model.net = std::make_shared<nn::Sequential>();
  auto l = std::make_shared<nn::ONNLinear>(8, 8, nn::PtcBinding::searched(&mesh), rng);
  model.net->add(l);
  model.onn_layers = {l.get()};
  try {
    rt::encode_checkpoint(model);
    FAIL() << "expected supermesh rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("SuperMesh"), std::string::npos);
  }
}

// ---- eval-cache thread safety (regression for the check-then-assign race)

TEST(WeightExprCache, ConcurrentNoGradReadersAreSafe) {
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  Rng rng(41);
  nn::ONNLinear layer(16, 16, nn::PtcBinding::fixed(topo), rng);

  std::vector<float> reference;
  {
    adept::ag::NoGradGuard guard;
    reference = layer.weight().weight_expr().data();
  }

  // Rounds of concurrent readers; between rounds the version is bumped so
  // every round re-races the build/publish path (pre-fix this tears the
  // cached tensor under ASan).
  for (int round = 0; round < 5; ++round) {
    adept::bump_param_version();
    std::vector<std::thread> threads;
    std::vector<int> mismatches(8, 0);
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        adept::ag::NoGradGuard guard;
        for (int it = 0; it < 20; ++it) {
          const std::vector<float> w = layer.weight().weight_expr().data();
          if (w != reference) ++mismatches[static_cast<std::size_t>(t)];
        }
      });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < 8; ++t) EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0);
  }
}

TEST(WeightExprCache, ThreadLocalGradModeIsolation) {
  // A no-grad scope on one thread must not disable tracking on another.
  adept::ag::NoGradGuard guard;
  bool other_thread_tracks = false;
  std::thread t([&] { other_thread_tracks = adept::ag::GradMode::enabled(); });
  t.join();
  EXPECT_TRUE(other_thread_tracks);
  EXPECT_FALSE(adept::ag::GradMode::enabled());
}

// ---- serving ------------------------------------------------------------

TEST(Server, IdenticalResultsAcrossWorkerCounts) {
  nn::OnnModel model = make_mlp(43);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});

  Rng rng(9);
  const int n = 64;
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> expected;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(random_input(18, rng));
    expected.push_back(cm.run(inputs.back(), 1));
  }

  for (int threads : {1, 4, 8}) {
    rt::ServerConfig cfg;
    cfg.threads = threads;
    cfg.max_batch = 8;
    cfg.max_wait_us = 500;
    rt::Server server(cm, cfg);
    std::vector<std::future<std::vector<float>>> futures;
    for (int i = 0; i < n; ++i) futures.push_back(server.submit(inputs[i]));
    for (int i = 0; i < n; ++i) {
      const std::vector<float> got = futures[static_cast<std::size_t>(i)].get();
      ASSERT_EQ(expected[static_cast<std::size_t>(i)], got)
          << "request " << i << " at " << threads << " threads";
    }
    const rt::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(n));
    EXPECT_GE(stats.batches, 1u);
    EXPECT_GE(stats.mean_batch_fill, 1.0);
    EXPECT_LE(stats.mean_batch_fill, 8.0);
    EXPECT_GE(stats.latency_p99_us, stats.latency_p50_us);
  }
}

TEST(Server, GracefulShutdownAnswersQueuedWork) {
  nn::OnnModel model = make_mlp(47);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  rt::ServerConfig cfg;
  cfg.threads = 2;
  cfg.max_batch = 4;
  cfg.max_wait_us = 0;
  rt::Server server(cm, cfg);

  Rng rng(10);
  std::vector<std::future<std::vector<float>>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(server.submit(random_input(18, rng)));
  server.shutdown();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().size(), 4u);  // all answered, none dropped
  }
  // Submitting after shutdown fails the future, not the process.
  auto late = server.submit(random_input(18, rng));
  EXPECT_THROW(late.get(), std::runtime_error);
  // Idempotent.
  server.shutdown();
}

TEST(Server, RejectsWrongInputSize) {
  nn::OnnModel model = make_mlp(53);
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {18});
  rt::Server server(cm, rt::ServerConfig{});
  EXPECT_THROW(server.submit(std::vector<float>(7)), std::invalid_argument);
}

// ---- ADEPT_SERVE_* env knob clamping ------------------------------------

TEST(ServerConfig, EnvKnobsClampIntoSupportedRange) {
  auto with_env = [](const char* name, const char* value, auto fn) {
    ::setenv(name, value, 1);
    fn();
    ::unsetenv(name);
  };

  with_env("ADEPT_SERVE_THREADS", "0", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().threads, 1);
  });
  with_env("ADEPT_SERVE_THREADS", "-3", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().threads, 1);
  });
  with_env("ADEPT_SERVE_THREADS", "100000", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().threads, 256);
  });
  with_env("ADEPT_SERVE_THREADS", "5", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().threads, 5);
  });
  with_env("ADEPT_SERVE_MAX_BATCH", "-1", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().max_batch, 1);
  });
  with_env("ADEPT_SERVE_MAX_BATCH", "1000000", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().max_batch, 4096);
  });
  with_env("ADEPT_SERVE_MAX_BATCH", "32", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().max_batch, 32);
  });
  with_env("ADEPT_SERVE_MAX_WAIT_US", "-5", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().max_wait_us, 0);
  });
  with_env("ADEPT_SERVE_MAX_WAIT_US", "99999999", [] {
    EXPECT_EQ(rt::ServerConfig::from_env().max_wait_us, 1000000);
  });
  // Unset -> defaults (threads default is hardware-dependent but in range).
  const rt::ServerConfig def = rt::ServerConfig::from_env();
  EXPECT_GE(def.threads, 1);
  EXPECT_LE(def.threads, 256);
  EXPECT_EQ(def.max_batch, 16);
  EXPECT_EQ(def.max_wait_us, 100);
}

}  // namespace
