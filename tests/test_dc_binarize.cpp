#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "core/dc_binarize.h"

namespace {

namespace ag = adept::ag;
namespace core = adept::core;
using ag::Tensor;

TEST(DcBinarize, PhysicalValues) {
  EXPECT_NEAR(core::dc_present_t(), std::sqrt(2.0) / 2.0, 1e-6);
  EXPECT_FLOAT_EQ(core::dc_absent_t(), 1.0f);
}

TEST(DcBinarize, QuantizeMapsSigns) {
  Tensor t = Tensor::from_data({4}, {-0.5f, 0.5f, -0.01f, 0.0f}, true);
  Tensor q = core::dc_quantize(t);
  EXPECT_NEAR(q.data()[0], std::sqrt(2.0) / 2.0, 1e-6);  // t<0 -> coupler
  EXPECT_FLOAT_EQ(q.data()[1], 1.0f);                    // t>=0 -> bar
  EXPECT_NEAR(q.data()[2], std::sqrt(2.0) / 2.0, 1e-6);
  EXPECT_FLOAT_EQ(q.data()[3], 1.0f);
}

TEST(DcBinarize, SteGradientScaledAndClipped) {
  Tensor t = Tensor::from_data({2}, {-0.5f, 0.5f}, true);
  Tensor q = core::dc_quantize(t);
  // dL/dq = 1 -> dL/dt = clamp(1 * (2-sqrt2)/4) = (2-sqrt2)/4
  ag::sum(q).backward();
  const float scale = static_cast<float>((2.0 - std::sqrt(2.0)) / 4.0);
  EXPECT_NEAR(t.grad()[0], scale, 1e-6);
  EXPECT_NEAR(t.grad()[1], scale, 1e-6);
}

TEST(DcBinarize, SteGradientClampAtOne) {
  Tensor t = Tensor::from_data({1}, {-0.5f}, true);
  Tensor q = core::dc_quantize(t);
  // huge upstream gradient must clamp to 1
  Tensor loss = ag::mul_scalar(ag::sum(q), 1e6f);
  loss.backward();
  EXPECT_NEAR(t.grad()[0], 1.0f, 1e-5);
}

TEST(DcBinarize, CountExprMatchesHardCount) {
  Tensor t = Tensor::from_data({5}, {-0.4f, 0.2f, -0.1f, 0.9f, -0.7f}, true);
  Tensor q = core::dc_quantize(t);
  Tensor count = core::dc_count_expr(q);
  EXPECT_NEAR(count.item(), 3.0f, 1e-4);
  EXPECT_EQ(core::dc_count_hard(t), 3);
}

TEST(DcBinarize, CountExprZeroAndFull) {
  Tensor none = Tensor::from_data({3}, {0.1f, 0.2f, 0.3f}, false);
  EXPECT_NEAR(core::dc_count_expr(core::dc_quantize(none)).item(), 0.0f, 1e-4);
  Tensor all = Tensor::from_data({3}, {-0.1f, -0.2f, -0.3f}, false);
  EXPECT_NEAR(core::dc_count_expr(core::dc_quantize(all)).item(), 3.0f, 1e-4);
}

TEST(DcBinarize, CountGradientFlowsThroughSte) {
  Tensor t = Tensor::from_data({2}, {-0.4f, 0.4f}, true);
  Tensor count = core::dc_count_expr(core::dc_quantize(t));
  count.backward();
  // d(count)/dq = 2/(sqrt2-2) < 0; STE scales by (2-sqrt2)/4 -> -0.5
  EXPECT_NEAR(t.grad()[0], -0.5f, 1e-5);
  EXPECT_NEAR(t.grad()[1], -0.5f, 1e-5);
}

}  // namespace
