#!/usr/bin/env python3
"""Summarize an ADEPT Chrome trace_event JSON (written via ADEPT_TRACE).

Validates the trace format, then prints the top-N span names ranked by
total time and by self time (total minus time covered by nested spans on
the same thread). Optionally validates a metrics JSON (ADEPT_METRICS_FILE)
alongside, and can assert that specific span families are present — the CI
telemetry smoke step uses both:

    trace_summary.py trace.json --metrics metrics.json \
        --require serve.request --require plan. --require comm.allreduce

Exit codes: 0 ok, 1 malformed input, 2 a --require substring matched no
span name.
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"trace_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def load_trace(path):
    """Load and validate a Chrome trace_event file; returns complete events."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: expected an object with a 'traceEvents' array")
    raw = doc["traceEvents"]
    if not isinstance(raw, list):
        fail(f"{path}: 'traceEvents' is not an array")
    events = []
    for i, ev in enumerate(raw):
        if not isinstance(ev, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        if ev.get("ph") != "X":
            continue  # only complete events are emitted today; skip others
        for key in ("name", "ts", "dur", "tid"):
            if key not in ev:
                fail(f"{path}: traceEvents[{i}] missing '{key}'")
        if not isinstance(ev["name"], str):
            fail(f"{path}: traceEvents[{i}] name is not a string")
        if ev["ts"] < 0 or ev["dur"] < 0:
            fail(f"{path}: traceEvents[{i}] has negative ts/dur")
        events.append(ev)
    return events


def summarize(events):
    """Per-name totals and self time (child spans subtracted, per thread)."""
    total = defaultdict(float)
    self_time = defaultdict(float)
    count = defaultdict(int)
    by_tid = defaultdict(list)
    for ev in events:
        total[ev["name"]] += ev["dur"]
        count[ev["name"]] += 1
        by_tid[ev["tid"]].append(ev)
    # Sweep each thread in start order with a stack of open spans; each
    # span's duration is charged to its innermost enclosing span, so a
    # parent's self time is its duration minus its direct children only
    # (grandchildren are already inside the children).
    for evs in by_tid.values():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # [end_ts, name, direct_child_total]
        for ev in evs:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and stack[-1][0] <= start:
                done = stack.pop()
                self_time[done[1]] -= done[2]
            if stack:
                stack[-1][2] += ev["dur"]
            self_time[ev["name"]] += ev["dur"]
            stack.append([end, ev["name"], 0.0])
        while stack:
            done = stack.pop()
            self_time[done[1]] -= done[2]
    return total, self_time, count


def check_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    for key in ("counters", "gauges", "histograms"):
        if key not in doc or not isinstance(doc[key], dict):
            fail(f"{path}: missing '{key}' object")
    for name, h in doc["histograms"].items():
        for field in ("count", "p50", "p90", "p99", "mean", "max"):
            if field not in h:
                fail(f"{path}: histogram '{name}' missing '{field}'")
    n = sum(len(doc[k]) for k in ("counters", "gauges", "histograms"))
    print(f"metrics ok: {len(doc['counters'])} counters, "
          f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms "
          f"({n} instruments)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace_event JSON (ADEPT_TRACE output)")
    ap.add_argument("-n", type=int, default=15, help="rows per ranking")
    ap.add_argument("--metrics", help="also validate a metrics JSON dump")
    ap.add_argument("--require", action="append", default=[],
                    help="fail (exit 2) unless some span name contains this "
                         "substring; repeatable")
    args = ap.parse_args()

    events = load_trace(args.trace)
    total, self_time, count = summarize(events)
    tids = {ev["tid"] for ev in events}
    print(f"trace ok: {len(events)} spans, {len(total)} names, "
          f"{len(tids)} threads")

    missing = [req for req in args.require
               if not any(req in name for name in total)]
    if args.metrics:
        check_metrics(args.metrics)

    for title, ranking in (("total", total), ("self", self_time)):
        print(f"\ntop {min(args.n, len(ranking))} spans by {title} time:")
        rows = sorted(ranking.items(), key=lambda kv: -kv[1])[:args.n]
        width = max((len(name) for name, _ in rows), default=4)
        for name, us in rows:
            print(f"  {name:<{width}}  {us / 1e3:10.3f} ms  x{count[name]}")

    if missing:
        for req in missing:
            print(f"trace_summary: no span name contains '{req}'",
                  file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
