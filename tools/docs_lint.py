#!/usr/bin/env python3
"""Docs lint: relative-link check + env-knob drift check.

Run from the repo root (CI does):  python3 tools/docs_lint.py

Checks, each exiting non-zero on failure:
  1. Every relative markdown link (and image) in README.md, ROADMAP.md,
     bench/README.md, and docs/*.md resolves to an existing file. External
     http(s)/mailto links and pure #anchors are skipped — CI must not
     depend on the network.
  2. Every ADEPT_* environment knob documented in src/common/env.h appears
     in README.md — and specifically as a row of the README knob table
     (a line starting "| `KNOB"), so the table cannot silently drift from
     the source of truth while a stray prose mention keeps the check green.
"""
from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [ROOT / "README.md", ROOT / "ROADMAP.md", ROOT / "bench" / "README.md"]
    + list((ROOT / "docs").glob("*.md"))
)

# [text](target) links, excluding images handled identically and code spans
# stripped first. Markdown inside code fences is still linted — links there
# are expected to be real paths in this repo's docs.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
KNOB_RE = re.compile(r"\bADEPT_[A-Z0-9_]+\b")


def check_links() -> list[str]:
    errors = []
    for doc in DOC_FILES:
        if not doc.exists():
            errors.append(f"{doc.relative_to(ROOT)}: file missing")
            continue
        text = doc.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                errors.append(
                    f"{doc.relative_to(ROOT)}:{line}: broken link -> {target}"
                )
    return errors


def check_env_knobs() -> list[str]:
    env_h = (ROOT / "src" / "common" / "env.h").read_text(encoding="utf-8")
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    # ADEPT_BENCH_* is a documented prefix family (per-bench scale knobs
    # live in bench_common.h); the concrete name ADEPT_BENCH_FULL is still
    # checked like any other.
    knobs = sorted(set(KNOB_RE.findall(env_h)))
    errors = []
    for knob in knobs:
        if knob not in readme:
            errors.append(
                f"src/common/env.h documents {knob} but README.md never mentions it"
            )
        elif f"| `{knob}" not in readme:
            # Mentioned in prose but missing a knob-table row. The wildcard
            # family ADEPT_BENCH_* satisfies this through its "| `ADEPT_BENCH_*`"
            # row (the regex captures the common prefix).
            errors.append(
                f"src/common/env.h documents {knob} but the README.md knob "
                "table has no row for it"
            )
    return errors


def main() -> int:
    errors = check_links() + check_env_knobs()
    for err in errors:
        print(f"docs-lint: {err}", file=sys.stderr)
    if not errors:
        docs = ", ".join(str(d.relative_to(ROOT)) for d in DOC_FILES)
        print(f"docs-lint: OK ({docs})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
